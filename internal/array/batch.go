package array

import (
	"fmt"

	"mouse/internal/isa"
)

// Bit-sliced batching: the third axis of parallelism after the column
// broadcast (PR 3's packed engine) and the sweep pool. A BatchMachine
// stores, for every cell of the machine geometry, one uint64 whose bit k
// is lane k's copy of that cell — up to MaxLanes independent inferences
// sharing one instruction stream. Every datapath effect of the scalar
// Machine then becomes a word operation over lanes:
//
//   - a read/write moves whole lane words between a row and the buffer
//     (a rotated write rotates the words across columns; the lane bits
//     inside each word never move, because rotation permutes columns,
//     not samples);
//   - a preset stores the all-lanes constant 0 or ^0 into each active
//     column;
//   - a full-pulse logic op applies the gate's P-count threshold mask
//     (mtj.TruthTable.SwitchWord) to the lane words of the active
//     columns — the same formulas Tile.ExecLogicFull applies to its
//     column bit-planes, with lanes in place of columns.
//
// The replay loop executes a compile.FlatProgram, so validation, truth
// table lookup, and activation decoding all happened once at compile
// time; nothing in the loop allocates or can fail. Interrupted pulses
// have no word-parallel form (the partial resistor-network integration
// is per cell), so intermittent execution stays on the scalar
// Machine/MachineRunner path — the batch engine is the
// continuous-power fast path only, and tests hold it bit-for-bit to 64
// scalar runs.

// MaxLanes is the number of independent samples one BatchMachine
// advances per word operation — the width of the lane words.
const MaxLanes = 64

// FlatOp is one pre-resolved instruction of a FlatProgram
// (compile.Flatten builds them). Field usage mirrors isa.Instruction,
// but every value is already in the form the batch executor consumes —
// validation, geometry checks, truth-table lookup, and activation
// decoding all happened at compile time.
type FlatOp struct {
	Kind isa.Kind

	// Memory fields (read/write): tile, row, and the rotation wrapped
	// to the machine width (Machine wraps narrow machines the same
	// way).
	Tile int
	Row  int
	Rot  int

	// Logic fields: input/output rows, arity, and the truth table's
	// threshold dispatch — the output switches in a column when at
	// least MinP of its NIn inputs are P, toward AP when ToAP (see
	// mtj.TruthTable.SwitchWord).
	In   [3]int
	Out  int
	NIn  int
	MinP int
	ToAP bool

	// Preset field: true writes AP (logic 1).
	AP bool

	// Activation fields: the resolved column set — deduplicated, in
	// first-occurrence order, filtered to the machine width exactly
	// like Tile.SetActive.
	Broadcast bool
	Cols      []uint16
}

// FlatProgram is a program compiled for one machine geometry and one
// electrical configuration. It is immutable after compilation and safe
// to replay from concurrent machines.
type FlatProgram struct {
	Ops []FlatOp

	// Tiles, Rows, Cols is the data-tile geometry the program was
	// resolved against; Replay refuses a machine of any other shape.
	Tiles, Rows, Cols int
}

// BatchTile is the lane-sliced image of one Tile: lane words in
// row-major cell order, plus the shared (lane-independent) volatile
// column-activation latch.
type BatchTile struct {
	rows, cols int

	// lanes[r*cols+c] holds cell (r, c) across all lanes; bit k is lane
	// k's value, 1 = AP = logic 1.
	lanes []uint64

	// active lists the active columns. It aliases the compiled
	// program's column set (immutable) — replacement semantics, exactly
	// like Tile.SetActive.
	active []uint16
}

func newBatchTile(rows, cols int) *BatchTile {
	return &BatchTile{rows: rows, cols: cols, lanes: make([]uint64, rows*cols)}
}

// Rows returns the number of rows in the tile.
func (t *BatchTile) Rows() int { return t.rows }

// Cols returns the number of columns in the tile.
func (t *BatchTile) Cols() int { return t.cols }

// rowWords returns row r's lane words, one per column.
func (t *BatchTile) rowWords(r int) []uint64 {
	return t.lanes[r*t.cols : (r+1)*t.cols]
}

func (t *BatchTile) checkCell(row, col int) {
	if row < 0 || row >= t.rows || col < 0 || col >= t.cols {
		panic(fmt.Sprintf("array: cell (%d, %d) outside %dx%d batch tile", row, col, t.rows, t.cols))
	}
}

// CellLanes returns the lane word of cell (row, col).
func (t *BatchTile) CellLanes(row, col int) uint64 {
	t.checkCell(row, col)
	return t.lanes[row*t.cols+col]
}

// SetCellLanes stores a full lane word into cell (row, col) — the bulk
// loading primitive: one call initializes a cell for all lanes at once.
func (t *BatchTile) SetCellLanes(row, col int, w uint64) {
	t.checkCell(row, col)
	t.lanes[row*t.cols+col] = w
}

// ActiveColumns returns the indices of currently active columns.
func (t *BatchTile) ActiveColumns() []uint16 { return t.active }

// BatchMachine is the lane-sliced image of a Machine: every tile a
// BatchTile, and the memory buffer one lane word per column.
type BatchMachine struct {
	Tiles []*BatchTile

	// Buffer is the non-volatile memory buffer, lane-sliced: Buffer[c]
	// holds bit c of every lane's buffer.
	Buffer []uint64

	rows, cols int
}

// NewBatchMachine creates the lane-sliced image of an
// nTiles×rows×cols machine, every cell P (0) in every lane.
func NewBatchMachine(nTiles, rows, cols int) *BatchMachine {
	if nTiles <= 0 || nTiles > isa.BroadcastTile {
		panic(fmt.Sprintf("array: bad tile count %d", nTiles))
	}
	if rows <= 0 || cols <= 0 || rows > isa.Rows || cols > isa.Cols {
		panic(fmt.Sprintf("array: bad tile geometry %dx%d", rows, cols))
	}
	m := &BatchMachine{Buffer: make([]uint64, cols), rows: rows, cols: cols}
	for i := 0; i < nTiles; i++ {
		m.Tiles = append(m.Tiles, newBatchTile(rows, cols))
	}
	return m
}

// Rows returns the per-tile row count.
func (m *BatchMachine) Rows() int { return m.rows }

// Cols returns the per-tile column count.
func (m *BatchMachine) Cols() int { return m.cols }

// Reset returns the machine to its post-construction state: all cells P
// in every lane, buffer cleared, no columns active. Steady-state batch
// loops do not need it — compiled workloads preset every derived row
// before use and the loader overwrites every input row — but it gives
// tests and reused arenas a clean origin.
func (m *BatchMachine) Reset() {
	for _, t := range m.Tiles {
		for i := range t.lanes {
			t.lanes[i] = 0
		}
		t.active = nil
	}
	for i := range m.Buffer {
		m.Buffer[i] = 0
	}
}

// LaneBit returns lane's logic value at (tile, row, col).
func (m *BatchMachine) LaneBit(lane, tile, row, col int) int {
	m.checkLane(lane)
	return int(m.Tiles[tile].CellLanes(row, col) >> lane & 1)
}

// SetLaneBit stores a logic value at (tile, row, col) in one lane.
func (m *BatchMachine) SetLaneBit(lane, tile, row, col, bit int) {
	m.checkLane(lane)
	t := m.Tiles[tile]
	t.checkCell(row, col)
	w := &t.lanes[row*t.cols+col]
	if bit != 0 {
		*w |= 1 << lane
	} else {
		*w &^= 1 << lane
	}
}

func (m *BatchMachine) checkLane(lane int) {
	if lane < 0 || lane >= MaxLanes {
		panic(fmt.Sprintf("array: lane %d out of range [0, %d)", lane, MaxLanes))
	}
}

func (m *BatchMachine) checkGeometry(tiles, rows, cols int) error {
	if len(m.Tiles) != tiles || m.rows != rows || m.cols != cols {
		return fmt.Errorf("array: batch machine is %dx%dx%d, want %dx%dx%d",
			len(m.Tiles), m.rows, m.cols, tiles, rows, cols)
	}
	return nil
}

// LoadLane packs one scalar machine's full non-volatile state — cells
// and memory buffer — into one lane. The machine must match the batch
// geometry. Volatile activation latches are not loaded: they are shared
// across lanes and owned by the replayed program's ACT instructions.
func (m *BatchMachine) LoadLane(lane int, src *Machine) error {
	m.checkLane(lane)
	if err := m.checkGeometry(len(src.Tiles), src.Tiles[0].Rows(), src.Tiles[0].Cols()); err != nil {
		return err
	}
	bit := uint64(1) << lane
	for ti, st := range src.Tiles {
		dt := m.Tiles[ti]
		for r := 0; r < m.rows; r++ {
			words := st.rowWords(r)
			out := dt.rowWords(r)
			for c := 0; c < m.cols; c++ {
				if words[c/wordBits]>>(c%wordBits)&1 == 1 {
					out[c] |= bit
				} else {
					out[c] &^= bit
				}
			}
		}
	}
	for c := 0; c < m.cols; c++ {
		if src.Buffer[c/8]>>(c%8)&1 == 1 {
			m.Buffer[c] |= bit
		} else {
			m.Buffer[c] &^= bit
		}
	}
	return nil
}

// StoreLane unpacks one lane into a scalar machine: cells, memory
// buffer, and the shared activation configuration (so the result is a
// faithful continuation point, not just a snapshot). The machine must
// match the batch geometry.
func (m *BatchMachine) StoreLane(lane int, dst *Machine) error {
	m.checkLane(lane)
	if err := m.checkGeometry(len(dst.Tiles), dst.Tiles[0].Rows(), dst.Tiles[0].Cols()); err != nil {
		return err
	}
	for ti, dt := range dst.Tiles {
		st := m.Tiles[ti]
		for r := 0; r < m.rows; r++ {
			words := st.rowWords(r)
			out := dt.rowWords(r)
			for i := range out {
				out[i] = 0
			}
			for c := 0; c < m.cols; c++ {
				if words[c]>>lane&1 == 1 {
					out[c/wordBits] |= 1 << (c % wordBits)
				}
			}
		}
		dt.SetActive(st.active)
	}
	m.BufferLane(lane, dst.Buffer)
	return nil
}

// BufferLane unpacks one lane's memory buffer into dst, the same layout
// ReadRow produces (bit c of the lane buffer is bit c%8 of dst[c/8]).
// dst must hold at least (cols+7)/8 bytes.
func (m *BatchMachine) BufferLane(lane int, dst []byte) {
	m.checkLane(lane)
	if len(dst)*8 < m.cols {
		panic(fmt.Sprintf("array: buffer too small (%d bytes for %d columns)", len(dst), m.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < m.cols; c++ {
		if m.Buffer[c]>>lane&1 == 1 {
			dst[c/8] |= 1 << (c % 8)
		}
	}
}

// Replay executes a compiled program once over all lanes. The program
// must have been flattened for this machine's exact geometry; that is
// the only runtime check — per-instruction validation happened in
// compile.Flatten, so the loop below is branch-lean, cannot fail, and
// performs no allocation.
func (m *BatchMachine) Replay(fp *FlatProgram) error {
	if err := m.checkGeometry(fp.Tiles, fp.Rows, fp.Cols); err != nil {
		return err
	}
	cols := m.cols
	for i := range fp.Ops {
		op := &fp.Ops[i]
		switch op.Kind {
		case isa.KindRead:
			copy(m.Buffer, m.Tiles[op.Tile].rowWords(op.Row))
		case isa.KindWrite:
			// Destination column c receives buffer word (c-rot) mod cols —
			// the lane-sliced image of WriteRowRot's left rotation. Lane
			// bits are untouched: rotation permutes columns, not samples.
			dst := m.Tiles[op.Tile].rowWords(op.Row)
			copy(dst[op.Rot:], m.Buffer[:cols-op.Rot])
			copy(dst[:op.Rot], m.Buffer[cols-op.Rot:])
		case isa.KindPreset:
			var w uint64
			if op.AP {
				w = ^uint64(0)
			}
			for _, t := range m.Tiles {
				row := t.rowWords(op.Row)
				for _, c := range t.active {
					row[c] = w
				}
			}
		case isa.KindLogic:
			for _, t := range m.Tiles {
				t.execLogic(op)
			}
		case isa.KindAct:
			if op.Broadcast {
				for _, t := range m.Tiles {
					t.active = op.Cols
				}
			} else {
				for ti, t := range m.Tiles {
					if ti == op.Tile {
						t.active = op.Cols
					} else {
						t.active = nil
					}
				}
			}
		}
	}
	return nil
}

// execLogic applies one full-pulse gate to the lane words of the active
// columns — mtj.TruthTable.SwitchWord's threshold masks, pre-dispatched
// by compile.Flatten into (NIn, MinP, ToAP).
func (t *BatchTile) execLogic(op *FlatOp) {
	if len(t.active) == 0 {
		return
	}
	out := t.rowWords(op.Out)
	switch m := op.MinP; {
	case m > op.NIn:
		return
	case m <= 0:
		// Every lane of every active column switches to the target state.
		var w uint64
		if op.ToAP {
			w = ^uint64(0)
		}
		for _, c := range t.active {
			out[c] = w
		}
		return
	}
	in0 := t.rowWords(op.In[0])
	var in1, in2 []uint64
	if op.NIn >= 2 {
		in1 = t.rowWords(op.In[1])
	}
	if op.NIn >= 3 {
		in2 = t.rowWords(op.In[2])
	}
	for _, c := range t.active {
		var sw uint64
		switch op.NIn {
		case 1:
			sw = ^in0[c]
		case 2:
			pa, pb := ^in0[c], ^in1[c]
			if op.MinP == 1 {
				sw = pa | pb
			} else {
				sw = pa & pb
			}
		default:
			pa, pb, pc := ^in0[c], ^in1[c], ^in2[c]
			switch op.MinP {
			case 1:
				sw = pa | pb | pc
			case 2:
				sw = pa&(pb|pc) | pb&pc
			default:
				sw = pa & pb & pc
			}
		}
		if op.ToAP {
			out[c] |= sw
		} else {
			out[c] &^= sw
		}
	}
}
