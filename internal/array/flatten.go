package array

import (
	"fmt"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Flatten turns an isa.Program into the flat op array a BatchMachine
// replays: every per-instruction decision is hoisted out of the replay
// loop — instructions validated, rows checked against the concrete
// machine geometry, write rotations wrapped at the tile width,
// activation lists expanded/deduplicated/width-filtered, and each
// gate's resistor-network truth table resolved to its (MinSwitchP,
// target-state) threshold via mtj.Table. It performs, once, every
// validation the scalar execution path performs per instruction; Replay
// then touches none of those paths again. compile.Flatten is the
// public compile-once entry point for program producers.
func Flatten(p isa.Program, cfg *mtj.Config, nTiles, rows, cols int) (*FlatProgram, error) {
	if nTiles <= 0 || nTiles > isa.BroadcastTile {
		return nil, fmt.Errorf("array: bad tile count %d", nTiles)
	}
	if rows <= 0 || cols <= 0 || rows > isa.Rows || cols > isa.Cols {
		return nil, fmt.Errorf("array: bad tile geometry %dx%d", rows, cols)
	}
	fp := &FlatProgram{Ops: make([]FlatOp, 0, len(p)), Tiles: nTiles, Rows: rows, Cols: cols}
	checkRow := func(i int, row uint16) error {
		if int(row) >= rows {
			return fmt.Errorf("array: instruction %d: row %d out of range [0, %d)", i, row, rows)
		}
		return nil
	}
	for i := range p {
		in := &p[i]
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("array: instruction %d: %w", i, err)
		}
		op := FlatOp{Kind: in.Kind}
		switch in.Kind {
		case isa.KindRead, isa.KindWrite:
			if int(in.Tile) >= nTiles {
				return nil, fmt.Errorf("array: instruction %d: tile %d out of range [0, %d)", i, in.Tile, nTiles)
			}
			if err := checkRow(i, in.Row); err != nil {
				return nil, err
			}
			op.Tile, op.Row = int(in.Tile), int(in.Row)
			// Narrow machines wrap the rotation at their actual width,
			// matching Machine's write path.
			op.Rot = int(in.Rot) % cols
		case isa.KindPreset:
			if err := checkRow(i, in.Row); err != nil {
				return nil, err
			}
			op.Row = int(in.Row)
			op.AP = in.Value == mtj.AP
		case isa.KindLogic:
			tbl, err := mtj.Table(in.Gate, cfg)
			if err != nil {
				return nil, fmt.Errorf("array: instruction %d: %w", i, err)
			}
			if err := checkRow(i, in.Out); err != nil {
				return nil, err
			}
			op.NIn = tbl.Inputs
			for j := 0; j < op.NIn; j++ {
				if err := checkRow(i, in.In[j]); err != nil {
					return nil, err
				}
				op.In[j] = int(in.In[j])
			}
			op.Out = int(in.Out)
			op.MinP = tbl.MinSwitchP
			op.ToAP = tbl.Target == mtj.AP
		case isa.KindAct:
			if !in.Broadcast {
				if int(in.Tile) >= nTiles {
					return nil, fmt.Errorf("array: instruction %d: tile %d is not a data tile", i, in.Tile)
				}
				op.Tile = int(in.Tile)
			}
			op.Broadcast = in.Broadcast
			// Columns beyond the machine width are dropped here, exactly
			// as the decoder (Tile.SetActive) ignores them.
			for _, c := range in.ActiveColumns() {
				if int(c) < cols {
					op.Cols = append(op.Cols, c)
				}
			}
		default:
			return nil, fmt.Errorf("array: instruction %d: unknown kind %d", i, uint8(in.Kind))
		}
		fp.Ops = append(fp.Ops, op)
	}
	return fp, nil
}
