package bnn

import (
	"math/rand"
	"testing"

	"mouse/internal/dataset"
)

// tinyBinSet builds a small binarized set matching a tiny network.
func tinyBinSet(seed int64, features, classes, perClass int) *dataset.Set {
	rng := rand.New(rand.NewSource(seed))
	protos := make([][]int, classes)
	for c := range protos {
		p := make([]int, features)
		for j := range p {
			p[j] = rng.Intn(2)
		}
		protos[c] = p
	}
	s := &dataset.Set{Name: "tiny-bin", NumFeatures: features, NumClasses: classes}
	emit := func(n int) []dataset.Sample {
		var out []dataset.Sample
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				x := make([]int, features)
				copy(x, protos[c])
				// Flip a couple of bits.
				for f := 0; f < 2; f++ {
					j := rng.Intn(features)
					x[j] = 1 - x[j]
				}
				out = append(out, dataset.Sample{X: x, Label: c})
			}
		}
		return out
	}
	s.Train = emit(perClass)
	s.Test = emit(4)
	return s
}

func tinyConfig(features, classes int) Config {
	return Config{Name: "tiny", In: features, Hidden: []int{12, 8}, Out: classes, InputBits: 1}
}

func TestConfigs(t *testing.T) {
	f := FINN()
	if f.In != 784 || len(f.Hidden) != 3 || f.Hidden[0] != 1024 || f.Out != 10 || f.InputBits != 1 {
		t.Errorf("FINN config wrong: %+v", f)
	}
	p := FPBNN()
	if p.Hidden[0] != 2048 || p.InputBits != 8 {
		t.Errorf("FP-BNN config wrong: %+v", p)
	}
	for _, c := range []Config{f, p} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := FINN()
	bad.InputBits = 4
	if err := bad.Validate(); err == nil {
		t.Errorf("4-bit input accepted")
	}
	bad = FINN()
	bad.Hidden = []int{0}
	if err := bad.Validate(); err == nil {
		t.Errorf("zero hidden width accepted")
	}
	w := FINN().Widths()
	if len(w) != 5 || w[0] != 784 || w[4] != 10 {
		t.Errorf("Widths = %v", w)
	}
}

func TestTrainTinyBinarized(t *testing.T) {
	ds := tinyBinSet(31, 16, 3, 30)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(net, ds.Test)
	if acc < 0.6 {
		t.Errorf("tiny BNN accuracy %.2f below 0.6", acc)
	}
	t.Logf("tiny BNN accuracy %.3f", acc)
}

func TestTrain8BitFirstLayer(t *testing.T) {
	ds := dataset.Adult(32, 200, 80)
	cfg := Config{Name: "adult", In: 15, Hidden: []int{16}, Out: 2, InputBits: 8}
	net, err := Train(ds, cfg, TrainConfig{Epochs: 20, LR: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(net, ds.Test)
	if acc < 0.55 {
		t.Errorf("8-bit-input BNN accuracy %.2f below 0.55", acc)
	}
	t.Logf("8-bit BNN accuracy %.3f", acc)
}

func TestTrainRejectsMismatch(t *testing.T) {
	ds := tinyBinSet(33, 16, 3, 5)
	if _, err := Train(ds, tinyConfig(20, 3), DefaultTrainConfig()); err == nil {
		t.Errorf("feature mismatch accepted")
	}
	if _, err := Train(&dataset.Set{NumFeatures: 16, NumClasses: 3}, tinyConfig(16, 3), DefaultTrainConfig()); err == nil {
		t.Errorf("empty training set accepted")
	}
}

func TestHiddenThresholdMatchesSign(t *testing.T) {
	// The popcount-threshold form must agree with the signed
	// pre-activation form for every possible popcount.
	ds := tinyBinSet(34, 16, 3, 10)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < len(net.Layers)-1; l++ {
		for j := range net.Layers[l].W {
			nin := len(net.Layers[l].W[j])
			thr := net.HiddenThreshold(l, j)
			for p := 0; p <= nin; p++ {
				z := 2*p - nin + net.Layers[l].Bias[j]
				signForm := z >= 0
				thrForm := p >= thr
				if signForm != thrForm {
					t.Fatalf("layer %d neuron %d popcount %d: sign %v, threshold %v", l, j, p, signForm, thrForm)
				}
			}
		}
	}
}

func TestScoreFromPop(t *testing.T) {
	net := &Network{
		Cfg: Config{In: 4, Out: 1, InputBits: 1},
		Layers: []Layer{{
			W:    [][]uint8{{1, 1, 0, 0}},
			Bias: []int{3},
		}},
	}
	// popcount 3 of 4 inputs: score = 2·3 − 4 + 3 = 5.
	if got := net.ScoreFromPop(0, 3); got != 5 {
		t.Errorf("ScoreFromPop = %d, want 5", got)
	}
}

func TestGoldenInferenceDeterministic(t *testing.T) {
	ds := tinyBinSet(35, 16, 3, 10)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Test[0].X
	a := net.Scores(x)
	b := net.Scores(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic scores")
		}
	}
	if len(a) != 3 {
		t.Fatalf("score count %d", len(a))
	}
}
