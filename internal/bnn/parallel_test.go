package bnn

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

// TestParallelMappingMatchesGolden verifies the layer-parallel mapping
// (neuron per column, diagonal layout, rotated-write redistribution)
// bit-for-bit against the integer golden model.
func TestParallelMappingMatchesGolden(t *testing.T) {
	ds := tinyBinSet(61, 16, 3, 20)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := net.CompileParallel(512)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Width != 16 {
		t.Fatalf("padded width %d, want 16", mp.Width)
	}
	t.Logf("layer-parallel BNN: %d instructions, %d gates", len(mp.Prog), mp.Gates)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 512, mp.Width)
	for _, s := range ds.Test[:4] {
		mp.LoadInput(func(row, col, bit int) {
			mach.Tiles[0].SetBit(row, col, bit)
		}, s.X)
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		want := net.Scores(s.X)
		for j := 0; j < net.Cfg.Out; j++ {
			bits := make([]int, len(mp.PopRows))
			for i, row := range mp.PopRows {
				bits[i] = mach.Tiles[0].Bit(row, j)
			}
			pop := 0
			for i, b := range bits {
				pop |= b << i
			}
			if got := mp.Score(j, pop); got != want[j] {
				t.Errorf("class %d: parallel mapping score %d, want %d", j, got, want[j])
			}
		}
	}
}

// TestParallelMappingSurvivesOutages runs the layer-parallel program —
// whose correctness depends on rotated read/write pairs spanning
// checkpoints — under a starved supply and compares against continuous
// power.
func TestParallelMappingSurvivesOutages(t *testing.T) {
	ds := tinyBinSet(62, 16, 3, 10)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := net.CompileParallel(512)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Test[0].X

	runOnce := func(h *power.Harvester) ([]int, uint64) {
		mach := array.NewMachine(mtj.ModernSTT(), 1, 512, mp.Width)
		mp.LoadInput(func(row, col, bit int) { mach.Tiles[0].SetBit(row, col, bit) }, x)
		c := controller.New(controller.ProgramStore(mp.Prog), mach)
		res, err := sim.NewMachineRunner(c).Run(h)
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]int, net.Cfg.Out)
		for j := range scores {
			pop := 0
			for i, row := range mp.PopRows {
				pop |= mach.Tiles[0].Bit(row, j) << i
			}
			scores[j] = mp.Score(j, pop)
		}
		return scores, res.Restarts
	}

	want, _ := runOnce(nil)
	cfg := mtj.ModernSTT()
	got, restarts := runOnce(power.NewHarvester(power.Constant{W: 2e-6}, 4e-9, cfg.CapVMin, cfg.CapVMax))
	if restarts == 0 {
		t.Fatalf("starved run saw no outages")
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("class %d diverged under outages: %d vs %d (restarts=%d)", j, got[j], want[j], restarts)
		}
	}
	golden := net.Scores(x)
	for j := range golden {
		if got[j] != golden[j] {
			t.Fatalf("class %d: %d vs golden %d", j, got[j], golden[j])
		}
	}
}

func TestCompileParallelValidates(t *testing.T) {
	if _, err := (&Network{Cfg: Config{InputBits: 8}}).CompileParallel(512); err == nil {
		t.Errorf("8-bit input accepted")
	}
	if _, err := (&Network{Cfg: Config{InputBits: 1}}).CompileParallel(512); err == nil {
		t.Errorf("empty network accepted")
	}
	ds := tinyBinSet(63, 16, 3, 5)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.CompileParallel(24); err == nil {
		t.Errorf("tiny row budget accepted")
	}
}

// TestParallelBeatsColumnLocal quantifies the Section VI trade-off the
// workload model assumes: the layer-parallel mapping needs far fewer
// instructions (lower latency) than the column-local mapping, at the
// price of more active columns per instruction (higher power).
func TestParallelBeatsColumnLocal(t *testing.T) {
	ds := tinyBinSet(64, 16, 3, 10)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	par, err := net.CompileParallel(512)
	if err != nil {
		t.Fatal(err)
	}
	local, err := CompileMapping(net, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Even at this toy width the gap is ~3.5×; it grows with layer width
	// since the parallel mapping's instruction count is independent of
	// the neuron count (up to the column budget).
	if len(par.Prog)*2 > len(local.Prog) {
		t.Errorf("parallel mapping %d instructions not ≥2× below column-local %d",
			len(par.Prog), len(local.Prog))
	}
	t.Logf("instructions: parallel %d vs column-local %d (%.0fx)",
		len(par.Prog), len(local.Prog), float64(len(local.Prog))/float64(len(par.Prog)))
}
