package bnn

import (
	"fmt"

	"mouse/internal/compile"
	"mouse/internal/isa"
)

// Mapping is a compiled BNN inference program. Weights are compile-time
// constants, so the XNOR multiply folds away entirely: weight +1 passes
// the activation through and weight −1 inverts it (a single NOT gate) —
// the instruction stream *is* the model, preloaded into the instruction
// tiles before deployment (Section IV-B). Each active column processes
// an independent input (batch parallelism across columns); the host
// reads column b's popcount words as sample b's class scores.
type Mapping struct {
	Prog isa.Program

	// InputRows[i] is the row holding input bit i (load per column;
	// binarized-input networks).
	InputRows []int

	// InputWordRows[i] lists the rows (LSB first) holding 8-bit input
	// feature i (8-bit-input networks).
	InputWordRows [][]int

	// PopRows[c] lists the rows (LSB first) of output class c's XNOR
	// popcount; convert with Network.ScoreFromPop.
	PopRows [][]int

	// Columns is the batch width the program activates.
	Columns int

	// Gates is the logic-gate count of one inference pass.
	Gates int
}

// Features returns the input-vector length the mapping expects (one
// row per binarized feature, or one row group per 8-bit feature) — the
// serving layer validates requests against it before admission.
func (m *Mapping) Features() int {
	if len(m.InputWordRows) > 0 {
		return len(m.InputWordRows)
	}
	return len(m.InputRows)
}

// count, processing batchCols inputs per pass. Binarized inputs occupy
// one row per feature; 8-bit inputs (the FP-BNN first layer) occupy
// eight rows per feature, and the first layer becomes a chain of signed
// adds and subtracts selected by the compile-time weight signs.
func CompileMapping(n *Network, rows, batchCols int) (*Mapping, error) {
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("bnn: empty network")
	}
	if n.Cfg.InputBits == 8 && len(n.Layers) < 2 {
		return nil, fmt.Errorf("bnn: an 8-bit-input network needs at least one hidden layer")
	}
	if batchCols < 1 || batchCols > isa.Cols {
		return nil, fmt.Errorf("bnn: batch width %d out of range", batchCols)
	}

	b := compile.NewBuilder(rows)
	cols := make([]uint16, batchCols)
	for i := range cols {
		cols[i] = uint16(i)
	}
	b.ActivateBroadcast(cols)

	m := &Mapping{Columns: batchCols}
	var acts []compile.Bit
	var inputWords []compile.Word
	if n.Cfg.InputBits == 1 {
		// Input activations, loaded externally (one bit per row).
		acts = make([]compile.Bit, n.Cfg.In)
		for i := range acts {
			acts[i] = b.Alloc(i & 1)
		}
		for _, bit := range acts {
			m.InputRows = append(m.InputRows, bit.Row)
		}
	} else {
		// 8-bit inputs: one word per feature.
		inputWords = make([]compile.Word, n.Cfg.In)
		for i := range inputWords {
			inputWords[i] = b.AllocWord(n.Cfg.InputBits, i&1)
			rows := make([]int, len(inputWords[i]))
			for bi, bit := range inputWords[i] {
				rows[bi] = bit.Row
			}
			m.InputWordRows = append(m.InputWordRows, rows)
		}
		var err error
		acts, err = compileFirstLayer8(b, n, inputWords)
		if err != nil {
			return nil, err
		}
	}

	startLayer := 0
	if n.Cfg.InputBits == 8 {
		startLayer = 1
	}
	for l := startLayer; l < len(n.Layers); l++ {
		layer := &n.Layers[l]
		last := l == len(n.Layers)-1
		var nextActs []compile.Bit
		for j := range layer.W {
			// Constant-folded XNOR: +1 weights pass through, −1 weights
			// invert.
			terms := make([]compile.Bit, len(layer.W[j]))
			var inverted []compile.Bit
			for i, w := range layer.W[j] {
				if w == 1 {
					terms[i] = acts[i]
				} else {
					inv := b.NOT(acts[i])
					terms[i] = inv
					inverted = append(inverted, inv)
				}
			}
			pop := b.PopCount(terms)
			b.Free(inverted...)
			if last {
				m.PopRows = append(m.PopRows, popRows(pop))
				continue // keep the popcount rows live as outputs
			}
			t := n.HiddenThreshold(l, j)
			var a compile.Bit
			if t > (1<<pop.Len())-1 {
				// The threshold exceeds any representable popcount: the
				// neuron can never fire.
				a = b.Const(0, 0)
			} else {
				thr := b.ConstWord(uint64(t), pop.Len(), 1-pop[0].Parity())
				a = b.GreaterEq(pop, thr)
				b.FreeWord(thr)
			}
			b.FreeWord(pop)
			nextActs = append(nextActs, a)
		}
		if !last {
			if l > 0 {
				b.Free(acts...) // inputs of layer l die once layer l+1's are ready
			}
			acts = nextActs
		}
	}

	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	m.Prog = prog
	m.Gates = b.GateCount()
	return m, nil
}

// compileFirstLayer8 emits the FP-BNN first layer: neuron j's
// pre-activation is bias_j plus the signed sum of the 8-bit inputs, each
// added or subtracted according to its compile-time weight bit; the
// activation is the pre-activation's sign. No multiplier is ever built —
// binary weights turn the layer into an add/subtract chain (Section III).
func compileFirstLayer8(b *compile.Builder, n *Network, x []compile.Word) ([]compile.Bit, error) {
	layer := &n.Layers[0]
	nIn := len(layer.W[0])
	width := n.Cfg.InputBits + 2
	for v := 1; v < nIn; v <<= 1 {
		width++
	}
	var acts []compile.Bit
	for j := range layer.W {
		acc := b.ConstWord(uint64(int64(layer.Bias[j])), width, 0)
		for i, wbit := range layer.W[j] {
			next := b.AddFixed(acc, x[i], wbit == 0)
			b.FreeWord(acc)
			acc = next
		}
		// Activation: pre-activation ≥ 0 ⟺ sign bit clear.
		a := b.NOT(acc[width-1])
		b.FreeWord(acc)
		acts = append(acts, a)
	}
	return acts, b.Err()
}

func popRows(w compile.Word) []int {
	rows := make([]int, len(w))
	for i, bit := range w {
		rows[i] = bit.Row
	}
	return rows
}

// PopFromBits decodes a popcount read from the mapped rows.
func (m *Mapping) PopFromBits(bits []int) int {
	v := 0
	for i, bit := range bits {
		v |= (bit & 1) << i
	}
	return v
}
