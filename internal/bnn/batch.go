package bnn

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/mtj"
)

// BatchEngine multiplies the mapping's column batch by the lane axis:
// the compiled program already classifies Columns samples per pass (one
// per column), and the bit-sliced arena runs array.MaxLanes independent
// copies of that pass per replay — capacity Columns×64 samples, sample
// s in lane s/Columns, column s%Columns. The program is flattened once
// and the arena reused, so the steady-state classify loop performs no
// allocation and no per-instruction validation.
//
// Like the SVM batch engine this is the continuous-power fast path
// only; intermittent execution keeps the scalar controller path.
type BatchEngine struct {
	m    *Mapping
	net  *Network
	flat *array.FlatProgram

	arena *array.BatchMachine
	bits  []int
}

// NewBatchEngine compiles the mapping's program for bit-sliced replay
// on a rows-tall machine (the geometry NewMachine allocates).
func (m *Mapping) NewBatchEngine(cfg *mtj.Config, rows int, net *Network) (*BatchEngine, error) {
	flat, err := compile.Flatten(m.Prog, cfg, 1, rows, m.Columns)
	if err != nil {
		return nil, err
	}
	maxPop := 0
	for _, rows := range m.PopRows {
		if len(rows) > maxPop {
			maxPop = len(rows)
		}
	}
	return &BatchEngine{
		m:     m,
		net:   net,
		flat:  flat,
		arena: array.NewBatchMachine(1, rows, m.Columns),
		bits:  make([]int, maxPop),
	}, nil
}

// Capacity returns the number of samples one replay classifies.
func (e *BatchEngine) Capacity() int { return e.m.Columns * array.MaxLanes }

// place maps sample s to its (lane, column) slot.
func (e *BatchEngine) place(s int) (lane, col int) { return s / e.m.Columns, s % e.m.Columns }

// LoadInputs packs the samples into their (lane, column) slots — the
// lane-sliced image of Mapping.LoadInputs.
func (e *BatchEngine) LoadInputs(samples [][]int) error {
	if len(samples) == 0 || len(samples) > e.Capacity() {
		return fmt.Errorf("bnn: batch of %d samples out of range [1, %d]", len(samples), e.Capacity())
	}
	t := e.arena.Tiles[0]
	load := func(featureRows func(i int) []int, nFeatures int) error {
		for s, x := range samples {
			if len(x) != nFeatures {
				return fmt.Errorf("bnn: sample %d has %d features, mapping expects %d", s, len(x), nFeatures)
			}
		}
		// One lane word per (cell, column): column col's word collects
		// samples col, col+Columns, col+2·Columns, ...
		usedCols := len(samples)
		if usedCols > e.m.Columns {
			usedCols = e.m.Columns
		}
		for i := 0; i < nFeatures; i++ {
			rows := featureRows(i)
			for bi, row := range rows {
				for col := 0; col < usedCols; col++ {
					var w uint64
					for s := col; s < len(samples); s += e.m.Columns {
						w |= uint64(samples[s][i]>>bi&1) << (s / e.m.Columns)
					}
					t.SetCellLanes(row, col, w)
				}
			}
		}
		return nil
	}
	if e.net.Cfg.InputBits == 1 {
		return load(func(i int) []int { return e.m.InputRows[i : i+1] }, len(e.m.InputRows))
	}
	return load(func(i int) []int { return e.m.InputWordRows[i] }, len(e.m.InputWordRows))
}

// ClassifyBatch runs one replay and returns the predicted class per
// sample.
func (e *BatchEngine) ClassifyBatch(samples [][]int) ([]int, error) {
	dst := make([]int, len(samples))
	if err := e.ClassifyBatchInto(dst, samples); err != nil {
		return nil, err
	}
	return dst, nil
}

// ClassifyBatchInto classifies into a caller-owned slice — the
// alloc-free steady-state entry point. dst must hold len(samples)
// elements.
func (e *BatchEngine) ClassifyBatchInto(dst []int, samples [][]int) error {
	if len(dst) < len(samples) {
		return fmt.Errorf("bnn: destination holds %d results, batch has %d", len(dst), len(samples))
	}
	if err := e.LoadInputs(samples); err != nil {
		return err
	}
	if err := e.arena.Replay(e.flat); err != nil {
		return err
	}
	t := e.arena.Tiles[0]
	for s := range samples {
		lane, col := e.place(s)
		best, bestScore := 0, 0
		for class, rows := range e.m.PopRows {
			bits := e.bits[:len(rows)]
			for i, row := range rows {
				bits[i] = int(t.CellLanes(row, col) >> lane & 1)
			}
			score := e.net.ScoreFromPop(class, e.m.PopFromBits(bits))
			if class == 0 || score > bestScore {
				best, bestScore = class, score
			}
		}
		dst[s] = best
	}
	return nil
}
