package bnn

import (
	"testing"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/dataset"
	"mouse/internal/mtj"
)

// TestMappingMatchesGoldenModel runs the compiled BNN program gate by
// gate on the functional array, a batch of inputs across columns, and
// requires bit-identical scores to the integer golden model.
func TestMappingMatchesGoldenModel(t *testing.T) {
	ds := tinyBinSet(41, 16, 3, 20)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const batch = 4
	mp, err := CompileMapping(net, 1024, batch)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compiled BNN: %d instructions, %d gates", len(mp.Prog), mp.Gates)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, batch)
	samples := ds.Test[:batch]
	for col, s := range samples {
		for i, row := range mp.InputRows {
			mach.Tiles[0].SetBit(row, col, s.X[i])
		}
	}
	c := controller.New(controller.ProgramStore(mp.Prog), mach)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for col, s := range samples {
		want := net.Scores(s.X)
		for class, rows := range mp.PopRows {
			bits := make([]int, len(rows))
			for i, row := range rows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			got := net.ScoreFromPop(class, mp.PopFromBits(bits))
			if got != want[class] {
				t.Errorf("sample %d class %d: score %d, want %d", col, class, got, want[class])
			}
		}
	}
}

func TestCompileMappingErrors(t *testing.T) {
	ds := tinyBinSet(42, 16, 3, 5)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileMapping(net, 1024, 0); err == nil {
		t.Errorf("zero batch accepted")
	}
	if _, err := CompileMapping(net, 16, 4); err == nil {
		t.Errorf("tiny row budget accepted")
	}
	if _, err := CompileMapping(&Network{Cfg: Config{InputBits: 1}}, 1024, 1); err == nil {
		t.Errorf("empty network accepted")
	}
	eight := &Network{Cfg: Config{In: 4, Out: 2, InputBits: 8}, Layers: make([]Layer, 1)}
	if _, err := CompileMapping(eight, 1024, 1); err == nil {
		t.Errorf("8-bit-input functional mapping accepted")
	}
}

// TestMapping8BitFirstLayer verifies the FP-BNN-style mapping: 8-bit
// inputs enter through a signed add/subtract first layer (weights folded
// into the instruction stream), then binary layers as usual — matching
// the golden model exactly.
func TestMapping8BitFirstLayer(t *testing.T) {
	ds := dataset.Adult(51, 150, 40)
	cfg := Config{Name: "adult8", In: 15, Hidden: []int{10}, Out: 2, InputBits: 8}
	net, err := Train(ds, cfg, TrainConfig{Epochs: 12, LR: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 3
	mp, err := CompileMapping(net, 1024, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.InputWordRows) != 15 || len(mp.InputRows) != 0 {
		t.Fatalf("input layout wrong: %d words, %d bits", len(mp.InputWordRows), len(mp.InputRows))
	}
	t.Logf("8-bit mapping: %d instructions, %d gates", len(mp.Prog), mp.Gates)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, batch)
	samples := ds.Test[:batch]
	for col, s := range samples {
		for i, rows := range mp.InputWordRows {
			for bi, row := range rows {
				mach.Tiles[0].SetBit(row, col, (s.X[i]>>bi)&1)
			}
		}
	}
	c := controller.New(controller.ProgramStore(mp.Prog), mach)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for col, s := range samples {
		want := net.Scores(s.X)
		for class, rows := range mp.PopRows {
			bits := make([]int, len(rows))
			for i, row := range rows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			got := net.ScoreFromPop(class, mp.PopFromBits(bits))
			if got != want[class] {
				t.Errorf("sample %d class %d: score %d, want %d", col, class, got, want[class])
			}
		}
	}
}

func TestMapping8BitNeedsHiddenLayer(t *testing.T) {
	single := &Network{
		Cfg:    Config{In: 4, Out: 2, InputBits: 8},
		Layers: []Layer{{W: [][]uint8{{1, 0, 1, 0}, {0, 1, 0, 1}}, Bias: []int{0, 0}}},
	}
	if _, err := CompileMapping(single, 1024, 1); err == nil {
		t.Errorf("single-layer 8-bit network accepted")
	}
}

func TestClassifyBatchHelper(t *testing.T) {
	ds := tinyBinSet(52, 16, 3, 15)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CompileMapping(net, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	mach := mp.NewMachine(mtj.ModernSTT(), 1024)
	samples := make([][]int, 4)
	for i := range samples {
		samples[i] = ds.Test[i].X
	}
	got, err := mp.ClassifyBatch(mach, net, samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range samples {
		if want := net.Predict(x); got[i] != want {
			t.Errorf("sample %d: %d, want %d", i, got[i], want)
		}
	}
	if _, err := mp.ClassifyBatch(mach, net, make([][]int, 99)); err == nil {
		t.Errorf("oversized batch accepted")
	}
	if _, err := mp.ClassifyBatch(mach, net, [][]int{{1}}); err == nil {
		t.Errorf("short sample accepted")
	}
}
