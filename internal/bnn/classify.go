package bnn

import (
	"fmt"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

// High-level classification helpers for the column-local batch mapping.

// NewMachine allocates a functional machine sized for the mapping's
// batch width.
func (m *Mapping) NewMachine(cfg *mtj.Config, rows int) *array.Machine {
	return array.NewMachine(cfg, 1, rows, m.Columns)
}

// LoadInputs writes one sample per column (up to the batch width).
func (m *Mapping) LoadInputs(mach *array.Machine, net *Network, samples [][]int) error {
	if len(samples) > m.Columns {
		return fmt.Errorf("bnn: %d samples exceed the batch width %d", len(samples), m.Columns)
	}
	for col, x := range samples {
		if net.Cfg.InputBits == 1 {
			if len(x) != len(m.InputRows) {
				return fmt.Errorf("bnn: sample %d has %d features, mapping expects %d", col, len(x), len(m.InputRows))
			}
			for i, row := range m.InputRows {
				mach.Tiles[0].SetBit(row, col, x[i])
			}
			continue
		}
		if len(x) != len(m.InputWordRows) {
			return fmt.Errorf("bnn: sample %d has %d features, mapping expects %d", col, len(x), len(m.InputWordRows))
		}
		for i, rows := range m.InputWordRows {
			for bi, row := range rows {
				mach.Tiles[0].SetBit(row, col, (x[i]>>bi)&1)
			}
		}
	}
	return nil
}

// ClassifyBatch runs one pass and returns the predicted class of each
// loaded sample.
func (m *Mapping) ClassifyBatch(mach *array.Machine, net *Network, samples [][]int) ([]int, error) {
	if err := m.LoadInputs(mach, net, samples); err != nil {
		return nil, err
	}
	c := controller.New(controller.ProgramStore(m.Prog), mach)
	if err := c.Run(); err != nil {
		return nil, err
	}
	out := make([]int, len(samples))
	for col := range samples {
		best, bestScore := 0, 0
		for class, rows := range m.PopRows {
			bits := make([]int, len(rows))
			for i, row := range rows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			score := net.ScoreFromPop(class, m.PopFromBits(bits))
			if class == 0 || score > bestScore {
				best, bestScore = class, score
			}
		}
		out[col] = best
	}
	return out, nil
}
