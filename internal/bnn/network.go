// Package bnn implements the binary neural networks of the paper's case
// studies (Section III): networks with single-bit neurons and weights,
// where multiplication becomes XNOR and accumulation becomes popcount.
// The two evaluated configurations mirror FINN (binarized 28×28 input,
// three hidden layers of 1024 neurons, 10 outputs) and FP-BNN (8-bit
// input, three hidden layers of 2048 neurons, 10 outputs).
//
// Training uses the straight-through estimator of Courbariaux et al.
// (float shadow weights, binarized forward pass); inference is exact
// integer arithmetic — the golden model the compiled MOUSE program is
// verified against bit for bit.
package bnn

import (
	"fmt"
	"math"

	"mouse/internal/dataset"
)

// Config describes a network topology.
type Config struct {
	Name string
	// In is the input feature count.
	In int
	// Hidden lists the hidden layer widths.
	Hidden []int
	// Out is the number of output classes.
	Out int
	// InputBits is 1 for binarized input (multiplications become XNOR/AND)
	// or 8 for integer input (the FP-BNN first layer adds/subtracts
	// 8-bit values by weight sign).
	InputBits int
}

// FINN returns the paper's FINN-derived MNIST configuration.
func FINN() Config {
	return Config{Name: "FINN", In: 784, Hidden: []int{1024, 1024, 1024}, Out: 10, InputBits: 1}
}

// FPBNN returns the paper's FP-BNN-derived MNIST configuration.
func FPBNN() Config {
	return Config{Name: "FP-BNN", In: 784, Hidden: []int{2048, 2048, 2048}, Out: 10, InputBits: 8}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.In <= 0 || c.Out <= 0 {
		return fmt.Errorf("bnn: bad dimensions in=%d out=%d", c.In, c.Out)
	}
	for _, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("bnn: bad hidden width %d", h)
		}
	}
	if c.InputBits != 1 && c.InputBits != 8 {
		return fmt.Errorf("bnn: input width %d must be 1 or 8", c.InputBits)
	}
	return nil
}

// Widths returns the layer widths from input to output.
func (c Config) Widths() []int {
	w := []int{c.In}
	w = append(w, c.Hidden...)
	return append(w, c.Out)
}

// Layer is one trained binary layer: weight bit 1 encodes +1 and bit 0
// encodes −1; Bias is the integer batch-norm-folded bias added to the
// ±1 pre-activation sum.
type Layer struct {
	// W[j][i] is the weight bit from input i to neuron j.
	W [][]uint8
	// Bias[j] is the integer bias of neuron j.
	Bias []int
}

// Network is a trained BNN in its exact integer inference form.
type Network struct {
	Cfg    Config
	Layers []Layer
}

// signedInput maps a stored feature to its signed value: binarized
// features 0/1 become −1/+1; 8-bit features are used as-is.
func (n *Network) signedInput(v int) int {
	if n.Cfg.InputBits == 1 {
		return 2*v - 1
	}
	return v
}

// preActs returns layer l's integer pre-activations (Σ±a + bias) given
// the previous layer's signed activations.
func preActs(layer *Layer, a []int) []int {
	out := make([]int, len(layer.W))
	for j, w := range layer.W {
		z := layer.Bias[j]
		for i, bit := range w {
			if bit == 1 {
				z += a[i]
			} else {
				z -= a[i]
			}
		}
		out[j] = z
	}
	return out
}

// Scores returns the integer class scores for input x.
func (n *Network) Scores(x []int) []int {
	a := make([]int, len(x))
	for i, v := range x {
		a[i] = n.signedInput(v)
	}
	for l := 0; l < len(n.Layers)-1; l++ {
		z := preActs(&n.Layers[l], a)
		a = a[:0]
		for _, v := range z {
			if v >= 0 {
				a = append(a, 1)
			} else {
				a = append(a, -1)
			}
		}
	}
	return preActs(&n.Layers[len(n.Layers)-1], a)
}

// Predict returns the class with the highest score.
func (n *Network) Predict(x []int) int {
	scores := n.Scores(x)
	best := 0
	for c, s := range scores {
		if s > scores[best] {
			best = c
		}
	}
	return best
}

// HiddenThreshold returns the popcount threshold form of hidden layer l,
// neuron j: with ±1 inputs, z = 2p − n + bias ≥ 0 ⟺ p ≥ ⌈(n−bias)/2⌉,
// where p is the popcount of XNOR(activations, weights). This is the
// form the hardware mapping executes.
func (n *Network) HiddenThreshold(l, j int) int {
	layer := &n.Layers[l]
	nin := len(layer.W[j])
	t := int(math.Ceil(float64(nin-layer.Bias[j]) / 2))
	if t < 0 {
		t = 0
	}
	if t > nin+1 {
		t = nin + 1
	}
	return t
}

// ScoreFromPop reconstructs output neuron j's integer score from the
// XNOR popcount p the hardware computes: score = 2p − n + bias.
func (n *Network) ScoreFromPop(j, p int) int {
	layer := &n.Layers[len(n.Layers)-1]
	return 2*p - len(layer.W[j]) + layer.Bias[j]
}

// Accuracy evaluates the network over samples.
func Accuracy(n *Network, samples []dataset.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
