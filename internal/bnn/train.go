package bnn

import (
	"fmt"
	"math"
	"math/rand"

	"mouse/internal/dataset"
)

// TrainConfig controls the straight-through-estimator trainer.
type TrainConfig struct {
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultTrainConfig returns sensible defaults for the small synthetic
// sets.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LR: 0.02, Seed: 1}
}

// Train fits a BNN with the straight-through estimator: float shadow
// weights, sign-binarized weights and activations in the forward pass,
// and gradients passed through the sign where the pre-activation is
// within the clip region.
func Train(ds *dataset.Set, cfg Config, tc TrainConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ds.NumFeatures != cfg.In || ds.NumClasses != cfg.Out {
		return nil, fmt.Errorf("bnn: dataset %dx%d does not match config %dx%d",
			ds.NumFeatures, ds.NumClasses, cfg.In, cfg.Out)
	}
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("bnn: empty training set")
	}
	rng := rand.New(rand.NewSource(tc.Seed))

	widths := cfg.Widths()
	nLayers := len(widths) - 1
	// Float shadow parameters.
	wf := make([][][]float64, nLayers)
	bf := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		wf[l] = make([][]float64, widths[l+1])
		bf[l] = make([]float64, widths[l+1])
		for j := range wf[l] {
			row := make([]float64, widths[l])
			for i := range row {
				row[i] = rng.NormFloat64() * 0.5
			}
			wf[l][j] = row
		}
	}
	signW := func(v float64) float64 {
		if v >= 0 {
			return 1
		}
		return -1
	}

	order := make([]int, len(ds.Train))
	for i := range order {
		order[i] = i
	}
	// Per-layer activation and pre-activation buffers.
	acts := make([][]float64, nLayers+1)
	pres := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		pres[l] = make([]float64, widths[l+1])
		acts[l+1] = make([]float64, widths[l+1])
	}
	deltas := make([][]float64, nLayers)
	for l := range deltas {
		deltas[l] = make([]float64, widths[l+1])
	}

	inScale := 1.0
	if cfg.InputBits == 8 {
		inScale = 1.0 / 128
	}

	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			s := ds.Train[idx]
			// Forward.
			a0 := make([]float64, cfg.In)
			for i, v := range s.X {
				if cfg.InputBits == 1 {
					a0[i] = float64(2*v - 1)
				} else {
					a0[i] = float64(v) * inScale
				}
			}
			acts[0] = a0
			for l := 0; l < nLayers; l++ {
				for j := 0; j < widths[l+1]; j++ {
					z := bf[l][j]
					row := wf[l][j]
					in := acts[l]
					for i := range row {
						z += signW(row[i]) * in[i]
					}
					pres[l][j] = z
					if l < nLayers-1 {
						acts[l+1][j] = signW(z)
					} else {
						acts[l+1][j] = z
					}
				}
			}
			// Softmax cross-entropy on the output pre-activations. The
			// temperature scales with the output layer's fan-in: ±1 sums
			// grow with width, and an unscaled softmax would saturate.
			temp := float64(widths[nLayers-1]) / 4
			if temp < 4 {
				temp = 4
			}
			out := acts[nLayers]
			maxZ := math.Inf(-1)
			for _, z := range out {
				if z > maxZ {
					maxZ = z
				}
			}
			sum := 0.0
			probs := deltas[nLayers-1]
			for j, z := range out {
				probs[j] = math.Exp((z - maxZ) / temp)
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
				if j == s.Label {
					probs[j] -= 1
				}
			}
			// Backward through sign with the straight-through estimator.
			for l := nLayers - 1; l >= 0; l-- {
				d := deltas[l]
				if l < nLayers-1 {
					for j := range d {
						// STE clip: gradient flows only where |z| ≤ 1.
						if math.Abs(pres[l][j]) > float64(widths[l])*0.75 {
							d[j] = 0
						}
					}
				}
				if l > 0 {
					nd := deltas[l-1]
					for i := range nd {
						nd[i] = 0
					}
					for j, dj := range d {
						if dj == 0 {
							continue
						}
						row := wf[l][j]
						for i := range row {
							nd[i] += dj * signW(row[i])
						}
					}
				}
				in := acts[l]
				for j, dj := range d {
					if dj == 0 {
						continue
					}
					row := wf[l][j]
					for i := range row {
						row[i] -= tc.LR * dj * in[i]
					}
					bf[l][j] -= tc.LR * dj
				}
			}
		}
	}

	// Freeze to the integer inference form.
	net := &Network{Cfg: cfg}
	biasScale := 1.0
	if cfg.InputBits == 8 {
		// First-layer float forward used scaled inputs; the integer
		// inference uses raw 8-bit values, so the bias rescales.
		biasScale = 1 / inScale
	}
	for l := 0; l < nLayers; l++ {
		layer := Layer{W: make([][]uint8, widths[l+1]), Bias: make([]int, widths[l+1])}
		for j := range layer.W {
			row := make([]uint8, widths[l])
			for i, v := range wf[l][j] {
				if v >= 0 {
					row[i] = 1
				}
			}
			layer.W[j] = row
			scale := 1.0
			if l == 0 {
				scale = biasScale
			}
			layer.Bias[j] = int(math.Round(bf[l][j] * scale))
		}
		net.Layers = append(net.Layers, layer)
	}
	return net, nil
}
