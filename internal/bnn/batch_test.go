package bnn

import (
	"testing"

	"mouse/internal/dataset"
	"mouse/internal/mtj"
)

// TestBNNBatchMatchesSequential: the lane-sliced engine must classify
// exactly like the sequential column-batch path, including when the
// sample count spills across lanes and leaves the last lane partially
// filled, and across back-to-back batches on the unreset arena.
func TestBNNBatchMatchesSequential(t *testing.T) {
	cfg := mtj.ModernSTT()
	ds := tinyBinSet(43, 16, 3, 30)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	const cols = 4
	mp, err := CompileMapping(net, 1024, cols)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mp.NewBatchEngine(cfg, 1024, net)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Capacity() != cols*64 {
		t.Fatalf("capacity %d, want %d", eng.Capacity(), cols*64)
	}
	mach := mp.NewMachine(cfg, 1024)

	var pool [][]int
	for i := 0; len(pool) < 90; i++ {
		pool = append(pool, ds.Test[i%len(ds.Test)].X)
	}
	next := 0
	// 1 (single sample), cols (one full lane), cols+1 and 2·cols+3
	// (partial last lane), 64 (many lanes).
	for _, size := range []int{1, cols, cols + 1, 2*cols + 3, 64} {
		batch := pool[next : next+size]
		next += size
		got, err := eng.ClassifyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		// Sequential reference: the existing column-batch path, cols
		// samples per controller run.
		for start := 0; start < len(batch); start += cols {
			end := start + cols
			if end > len(batch) {
				end = len(batch)
			}
			want, err := mp.ClassifyBatch(mach, net, batch[start:end])
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				if got[start+i] != w {
					t.Fatalf("batch %d sample %d: batched class %d, sequential %d", size, start+i, got[start+i], w)
				}
			}
		}
		// And directly against the golden network model.
		for i, x := range batch {
			scores := net.Scores(x)
			best := 0
			for c, s := range scores {
				if c == 0 || s > scores[best] {
					best = c
				}
			}
			if got[i] != best {
				t.Fatalf("batch %d sample %d: batched class %d, golden %d", size, i, got[i], best)
			}
		}
	}
}

// TestBNNBatch8BitInputs covers the word-per-feature loading path (the
// FP-BNN 8-bit first layer).
func TestBNNBatch8BitInputs(t *testing.T) {
	cfg := mtj.ModernSTT()
	ds := dataset.Adult(47, 120, 30)
	netCfg := Config{Name: "t8", In: 15, Hidden: []int{8}, Out: 2, InputBits: 8}
	net, err := Train(ds, netCfg, TrainConfig{Epochs: 8, LR: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const cols = 3
	mp, err := CompileMapping(net, 1024, cols)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mp.NewBatchEngine(cfg, 1024, net)
	if err != nil {
		t.Fatal(err)
	}
	mach := mp.NewMachine(cfg, 1024)
	samples := make([][]int, 10)
	for i := range samples {
		samples[i] = ds.Test[i%len(ds.Test)].X
	}
	got, err := eng.ClassifyBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(samples); start += cols {
		end := start + cols
		if end > len(samples) {
			end = len(samples)
		}
		want, err := mp.ClassifyBatch(mach, net, samples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got[start+i] != w {
				t.Fatalf("sample %d: batched class %d, sequential %d", start+i, got[start+i], w)
			}
		}
	}
}

// TestBNNBatchValidatesInput: shape errors are caught before replay.
func TestBNNBatchValidatesInput(t *testing.T) {
	cfg := mtj.ModernSTT()
	ds := tinyBinSet(49, 16, 3, 20)
	net, err := Train(ds, tinyConfig(16, 3), DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CompileMapping(net, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mp.NewBatchEngine(cfg, 1024, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ClassifyBatch(nil); err == nil {
		t.Error("accepted an empty batch")
	}
	if _, err := eng.ClassifyBatch(make([][]int, eng.Capacity()+1)); err == nil {
		t.Error("accepted an oversized batch")
	}
	if _, err := eng.ClassifyBatch([][]int{ds.Test[0].X[:3]}); err == nil {
		t.Error("accepted a short feature vector")
	}
}
