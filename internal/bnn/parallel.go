package bnn

import (
	"fmt"

	"mouse/internal/compile"
	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// Layer-parallel mapping: one neuron per column (Section VI's
// column-level parallelism), instead of one whole network per column.
// This is the mapping the paper-scale workload model assumes, realized
// functionally:
//
//   - Activations are stored *diagonally*: column c's row q_d holds
//     activation a_{(c+d) mod W}. A single read plus W rotated writes
//     then gives every column the entire activation vector of the
//     previous layer — the only horizontal datapath MOUSE has.
//   - Weights are preloaded per column in the matching diagonal order
//     (column c's weight row w_d holds W[c][(c+d) mod W]), so one
//     uniform XNOR instruction multiplies the right pair everywhere.
//   - All layers are padded to a common width W: dead inputs carry
//     weight 0 against a constant-0 activation, contributing exactly one
//     XNOR hit each, which the thresholds absorb.
//
// ParallelMapping must run on a machine whose tiles are exactly Width
// columns wide, so the write rotation wraps at the layer width.
type ParallelMapping struct {
	Prog isa.Program

	// Width is the padded uniform layer width (= required tile width).
	Width int

	// InputDiag[d] is the row that must hold x_{(c+d) mod Width} in
	// column c before the run (use LoadInput).
	InputDiag []int

	// PopRows lists the output popcount word's rows (LSB first); read
	// them in column j for output neuron j, and convert with Score.
	PopRows []int

	// Gates is the logic-gate count of one inference.
	Gates int

	net *Network
}

// CompileParallel compiles the network in the layer-parallel mapping for
// tiles with the given row count. Requires a binarized-input network.
func (n *Network) CompileParallel(rows int) (*ParallelMapping, error) {
	if n.Cfg.InputBits != 1 {
		return nil, fmt.Errorf("bnn: parallel mapping requires binarized input")
	}
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("bnn: empty network")
	}
	width := n.Cfg.In
	for _, w := range n.Cfg.Widths() {
		if w > width {
			width = w
		}
	}
	if width > isa.Cols {
		return nil, fmt.Errorf("bnn: padded width %d exceeds the column count", width)
	}

	b := compile.NewBuilder(rows)
	b.Emit(isa.ActRange(true, 0, 0, width, 1))

	// Diagonal activation rows for the current layer's input.
	actDiag := b.AllocWord(width, 0)
	m := &ParallelMapping{Width: width, net: n}
	for _, bit := range actDiag {
		m.InputDiag = append(m.InputDiag, bit.Row)
	}

	// Weight and threshold data rows, reused across layers (re-preset
	// per layer).
	wDiag := b.AllocWord(width, 0)

	var pop compile.Word
	for l := range n.Layers {
		layer := &n.Layers[l]
		nIn := len(layer.W[0])
		nOut := len(layer.W)
		last := l == len(n.Layers)-1

		// Preload this layer's weights in diagonal order, one column at
		// a time (static data, written before the uniform compute).
		for c := 0; c < width; c++ {
			b.ActivateBroadcast([]uint16{uint16(c)})
			for d := 0; d < width; d++ {
				i := (c + d) % width
				bit := 0
				if c < nOut && i < nIn && layer.W[c][i] == 1 {
					bit = 1
				}
				b.Emit(isa.Preset(wDiag[d].Row, mtj.FromBit(bit)))
			}
		}
		b.Emit(isa.ActRange(true, 0, 0, width, 1))

		// XNOR terms and tree popcount, uniform across columns.
		terms := make([]compile.Bit, width)
		for d := 0; d < width; d++ {
			terms[d] = b.XNOR(actDiag[d], wDiag[d])
		}
		if pop != nil {
			b.FreeWord(pop)
		}
		pop = b.PopCount(terms)
		for _, t := range terms {
			b.Free(t)
		}
		if last {
			break
		}

		// Per-neuron thresholds (plus the dead-input correction), as
		// per-column data.
		thr := b.AllocWord(pop.Len(), 1-pop[0].Parity())
		maxThr := uint64(1<<pop.Len() - 1)
		for c := 0; c < width; c++ {
			b.ActivateBroadcast([]uint16{uint16(c)})
			t := maxThr // dead neuron: never fires
			if c < nOut {
				t = uint64(n.HiddenThreshold(l, c) + deadHits(layer, c, width))
				if t > maxThr {
					t = maxThr
				}
			}
			for i, bit := range thr {
				b.Emit(isa.Preset(bit.Row, mtj.FromBit(int(t>>i)&1)))
			}
		}
		b.Emit(isa.ActRange(true, 0, 0, width, 1))
		a := b.GreaterEq(pop, thr)
		b.FreeWord(thr)

		// Redistribute: column c's bit a_c fans out diagonally into the
		// next layer's activation rows via rotated writes.
		for d := 0; d < width; d++ {
			b.Emit(isa.Read(0, a.Row))
			b.Emit(isa.WriteRot(0, actDiag[d].Row, (width-d)%width))
		}
		b.Free(a)
	}

	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	m.Prog = prog
	m.Gates = b.GateCount()
	for _, bit := range pop {
		m.PopRows = append(m.PopRows, bit.Row)
	}
	return m, nil
}

// deadHits counts the padded inputs that contribute a guaranteed XNOR
// hit to every neuron of the layer: activation 0 against weight 0.
func deadHits(layer *Layer, neuron, width int) int {
	return width - len(layer.W[neuron])
}

// LoadInput places the binarized sample diagonally into column c, row
// InputDiag[d] ← x_{(c+d) mod Width} (zero beyond the real input width).
func (m *ParallelMapping) LoadInput(set func(row, col, bit int), x []int) {
	for c := 0; c < m.Width; c++ {
		for d, row := range m.InputDiag {
			i := (c + d) % m.Width
			bit := 0
			if i < len(x) {
				bit = x[i]
			}
			set(row, c, bit)
		}
	}
}

// Score converts output neuron j's popcount (read from column j's
// PopRows) into the integer class score, correcting for the padded
// dead-input hits.
func (m *ParallelMapping) Score(j, popValue int) int {
	out := &m.net.Layers[len(m.net.Layers)-1]
	real := popValue - deadHits(out, j, m.Width)
	return m.net.ScoreFromPop(j, real)
}
