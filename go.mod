module mouse

go 1.22
