// Spectrum analysis on harvested power: a vibration-monitoring sensor
// (think bearing-wear detection on a motor, powered by the motor's own
// vibration) computes an 8-point FFT of its samples *inside* the
// non-volatile memory, surviving power cuts mid-transform. The example
// also reproduces the related-work comparison of Section X: a 1024-point
// CRAFFT-style transform against the published NVP and CRAFFT numbers.
//
//	go run ./examples/fft_spectrum
package main

import (
	"fmt"
	"log"
	"math"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/energy"
	"mouse/internal/fft"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

func main() {
	p := fft.Params{N: 8, Width: 14, Frac: 7}
	mp, err := fft.Compile(p, 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d-point in-memory FFT: %d instructions, %d gates\n\n",
		p.N, len(mp.Prog), mp.Gates)

	// A "vibration" signal: a strong 2-cycles-per-window tone plus a
	// weaker 3-cycle harmonic — the wear signature.
	re := make([]int64, p.N)
	im := make([]int64, p.N)
	for i := range re {
		v := 60*math.Cos(2*math.Pi*2*float64(i)/float64(p.N)) +
			25*math.Cos(2*math.Pi*3*float64(i)/float64(p.N))
		re[i] = int64(math.Round(v))
	}

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, 1)
	mask := uint64(1<<p.Width - 1)
	for i := 0; i < p.N; i++ {
		for bi, row := range mp.InRe[i] {
			mach.Tiles[0].SetBit(row, 0, int(uint64(re[i])&mask>>bi)&1)
		}
		for bi, row := range mp.InIm[i] {
			mach.Tiles[0].SetBit(row, 0, int(uint64(im[i])&mask>>bi)&1)
		}
	}

	// Run on a weak harvester: the transform spans many power cycles.
	c := controller.New(controller.ProgramStore(mp.Prog), mach)
	runner := sim.NewMachineRunner(c)
	h := power.NewHarvester(power.Constant{W: 3e-6}, 30e-9, 0.320, 0.340)
	res, err := runner.Run(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transform completed across %d power outages (%.1f ms total, %.2f µJ)\n\n",
		res.Restarts, res.TotalLatency()*1e3, res.TotalEnergy()*1e6)

	// Golden check + spectrum display.
	wantRe := append([]int64(nil), re...)
	wantIm := append([]int64(nil), im...)
	if err := p.Transform(wantRe, wantIm); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bin  |X_k|   (in-array result vs golden model)")
	exact := true
	for k := 0; k < p.N; k++ {
		gr := fft.DecodeSigned(readRows(mach, mp.OutRe[k]))
		gi := fft.DecodeSigned(readRows(mach, mp.OutIm[k]))
		if gr != wantRe[k] || gi != wantIm[k] {
			exact = false
		}
		mag := math.Hypot(float64(gr), float64(gi))
		fmt.Printf("%3d  %6.1f  %s\n", k, mag, bar(mag/40))
	}
	if exact {
		fmt.Println("\nevery bin matches the golden model bit for bit, through all outages")
	} else {
		fmt.Println("\nMISMATCH against the golden model")
	}

	// Section X comparison at paper scale.
	fmt.Println("\n1024-point FFT, related-work comparison (Section X):")
	fmt.Printf("  %-28s %6.2f ms\n", "NVP (THU1010N) [57]", fft.NVPLatency*1e3)
	fmt.Printf("  %-28s %6.2f ms\n", "CRAFFT on CRAM [19]", fft.CRAFFTLatency*1e3)
	stream, err := fft.Stream(fft.MiBenchParams())
	if err != nil {
		log.Fatal(err)
	}
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	out := r.RunContinuous(stream)
	fmt.Printf("  %-28s %6.2f ms (%.2f µJ) — pays the intermittent-safety tax, still beats the NVP\n",
		"MOUSE Modern STT", out.OnLatency*1e3, out.TotalEnergy()*1e6)
}

func readRows(m *array.Machine, rows []int) []int {
	bits := make([]int, len(rows))
	for i, row := range rows {
		bits[i] = m.Tiles[0].Bit(row, 0)
	}
	return bits
}

func bar(n float64) string {
	s := ""
	for i := 0; float64(i) < n; i++ {
		s += "█"
	}
	return s
}
