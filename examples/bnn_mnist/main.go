// BNN MNIST end to end: train a binarized network on synthetic digits,
// compile it so the weights fold into the instruction stream (weight +1
// passes an activation through, −1 becomes a NOT gate — the model IS the
// program, preloaded into the instruction tiles), then classify a batch
// of images across columns on the functional array, with and without
// power outages. Closes with the FINN/FP-BNN paper-scale comparison.
//
//	go run ./examples/bnn_mnist
package main

import (
	"fmt"
	"log"

	"mouse/internal/array"
	"mouse/internal/bnn"
	"mouse/internal/controller"
	"mouse/internal/dataset"
	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

// pool4 max-pools a 28×28 image to 7×7.
func pool4(x []int) []int {
	out := make([]int, 49)
	for y := 0; y < 7; y++ {
		for xx := 0; xx < 7; xx++ {
			m := 0
			for dy := 0; dy < 4; dy++ {
				for dx := 0; dx < 4; dx++ {
					if v := x[(y*4+dy)*28+xx*4+dx]; v > m {
						m = v
					}
				}
			}
			out[y*7+xx] = m
		}
	}
	return out
}

func main() {
	// Synthetic digits, pooled to 7×7 and binarized.
	raw := dataset.Digits(19, 15, 6)
	ds := &dataset.Set{Name: "digits 7x7", NumFeatures: 49, NumClasses: 10}
	for _, s := range raw.Train {
		ds.Train = append(ds.Train, dataset.Sample{X: pool4(s.X), Label: s.Label})
	}
	for _, s := range raw.Test {
		ds.Test = append(ds.Test, dataset.Sample{X: pool4(s.X), Label: s.Label})
	}
	ds = ds.Binarize(100)

	cfg := bnn.Config{Name: "mini-FINN", In: 49, Hidden: []int{32, 24}, Out: 10, InputBits: 1}
	net, err := bnn.Train(ds, cfg, bnn.TrainConfig{Epochs: 40, LR: 0.005, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %v BNN, golden-model accuracy %.2f\n", cfg.Widths(), bnn.Accuracy(net, ds.Test))

	const batch = 8
	mp, err := bnn.CompileMapping(net, 1024, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d gates — the weights live in the instruction stream\n\n",
		len(mp.Prog), mp.Gates)

	// Classify a batch across columns, under a starved supply.
	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, batch)
	samples := ds.Test[:batch]
	for col, s := range samples {
		for i, row := range mp.InputRows {
			mach.Tiles[0].SetBit(row, col, s.X[i])
		}
	}
	ctl := controller.New(controller.ProgramStore(mp.Prog), mach)
	runner := sim.NewMachineRunner(ctl)
	h := power.NewHarvester(power.Constant{W: 5e-6}, 20e-9, 0.320, 0.340)
	res, err := runner.Run(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d classified through %d power outages:\n", batch, res.Restarts)
	matches := 0
	for col, s := range samples {
		best, bestScore := 0, 0
		for class, rows := range mp.PopRows {
			bits := make([]int, len(rows))
			for i, row := range rows {
				bits[i] = mach.Tiles[0].Bit(row, col)
			}
			score := net.ScoreFromPop(class, mp.PopFromBits(bits))
			if class == 0 || score > bestScore {
				best, bestScore = class, score
			}
		}
		golden := net.Predict(s.X)
		tick := "✓"
		if best == golden {
			matches++
		} else {
			tick = "✗"
		}
		fmt.Printf("  image %d: hardware says %d, golden model says %d, label %d %s\n",
			col, best, golden, s.Label, tick)
	}
	fmt.Printf("%d/%d hardware predictions match the golden model exactly\n\n", matches, batch)

	// Paper-scale configurations under continuous power.
	fmt.Println("paper-scale BNNs (Modern STT, continuous power):")
	r := sim.NewRunner(energy.NewModel(mtj.ModernSTT()))
	for _, name := range []string{"BNN FINN MNIST", "BNN FPBNN MNIST"} {
		spec, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		out := r.RunContinuous(spec.Stream())
		fmt.Printf("  %-16s %8.0f µs  %7.2f µJ (%d instructions)\n",
			name, out.OnLatency*1e6, out.TotalEnergy()*1e6, out.Instructions)
	}
}
