// Intermittent-safety demonstration: the same computation is executed
// once under continuous power and once on a starved supply that cuts
// power mid-instruction dozens of times — at whatever µ-phase the energy
// ran out, including mid-gate-pulse and between the PC write and the
// parity-bit flip. The final array contents must be identical
// (Section V's correctness guarantee, "instant restartability").
//
//	go run ./examples/intermittent_demo
package main

import (
	"fmt"
	"log"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

func main() {
	b := compile.NewBuilder(512)
	b.ActivateBroadcast([]uint16{0, 1, 2, 3})
	x := b.AllocWord(6, 0)
	y := b.AllocWord(6, 0)
	prod := b.MulWords(x, y)
	thr := b.ConstWord(1000, prod.Len(), 0)
	lt := b.LessThan(prod, thr)
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d instructions computing p = x*y and (p < 1000), 4 columns\n\n", len(prog))

	inputs := [4][2]int{{37, 41}, {63, 63}, {9, 100 % 64}, {25, 40}}
	build := func() (*controller.Controller, *array.Machine) {
		m := array.NewMachine(mtj.ModernSTT(), 1, 512, 4)
		for col, in := range inputs {
			for i, bit := range x {
				m.Tiles[0].SetBit(bit.Row, col, (in[0]>>i)&1)
			}
			for i, bit := range y {
				m.Tiles[0].SetBit(bit.Row, col, (in[1]>>i)&1)
			}
		}
		return controller.New(controller.ProgramStore(prog), m), m
	}
	read := func(m *array.Machine, col int) (int, int) {
		v := 0
		for i, bit := range prod {
			v |= m.Tiles[0].Bit(bit.Row, col) << i
		}
		return v, m.Tiles[0].Bit(lt.Row, col)
	}

	// Continuous reference run.
	refC, refM := build()
	if _, err := sim.NewMachineRunner(refC).Run(nil); err != nil {
		log.Fatal(err)
	}

	// Starved run: a capacitor that holds only a handful of instructions.
	c, m := build()
	runner := sim.NewMachineRunner(c)
	h := power.NewHarvester(power.Constant{W: 2e-6}, 3e-9, 0.320, 0.340)
	res, err := runner.Run(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("starved run: %d unexpected power failures over %d instructions\n", res.Restarts, res.Instructions)
	fmt.Printf("dead energy (re-performed work): %.3g%% of total; restore: %.3g%%\n\n",
		100*res.Share(res.DeadEnergy), 100*res.Share(res.RestoreEnergy))

	ok := true
	for col, in := range inputs {
		rp, rl := read(refM, col)
		sp, sl := read(m, col)
		match := "✓"
		if rp != sp || rl != sl {
			match, ok = "✗ MISMATCH", false
		}
		fmt.Printf("col %d: %2d × %2d = %4d (p<1000: %d)   continuous %4d/%d  %s\n",
			col, in[0], in[1], sp, sl, rp, rl, match)
	}
	if ok {
		fmt.Println("\nevery column matches the continuous-power run bit for bit:")
		fmt.Println("idempotent gates + dual-PC checkpointing = instant restartability")
	}
}
