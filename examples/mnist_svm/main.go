// MNIST SVM end to end: train a polynomial-kernel SVM on synthetic
// binarized digits (downsampled so the compiled program stays small),
// compile it to a MOUSE program — class c's one-vs-rest machine in
// column c — and classify test images gate by gate on the functional
// array, comparing against the fixed-point golden model. Finally, the
// paper-scale MNIST benchmark is estimated under a 60 µW harvester.
//
//	go run ./examples/mnist_svm
package main

import (
	"fmt"
	"log"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/dataset"
	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/svm"
	"mouse/internal/workload"
)

// downsample reduces a 28×28 image to 7×7 by 4×4 max pooling, keeping
// the compiled per-column program within the 1024-row budget.
func downsample(s *dataset.Set) *dataset.Set {
	const from, factor = 28, 4
	to := from / factor
	out := &dataset.Set{Name: s.Name + " 7x7", NumFeatures: to * to, NumClasses: s.NumClasses}
	shrink := func(in []dataset.Sample) []dataset.Sample {
		res := make([]dataset.Sample, len(in))
		for i, smp := range in {
			x := make([]int, to*to)
			for y := 0; y < to; y++ {
				for xx := 0; xx < to; xx++ {
					maxV := 0
					for dy := 0; dy < factor; dy++ {
						for dx := 0; dx < factor; dx++ {
							v := smp.X[(y*factor+dy)*from+xx*factor+dx]
							if v > maxV {
								maxV = v
							}
						}
					}
					x[y*to+xx] = maxV
				}
			}
			res[i] = dataset.Sample{X: x, Label: smp.Label}
		}
		return res
	}
	out.Train = shrink(s.Train)
	out.Test = shrink(s.Test)
	return out
}

func main() {
	fmt.Println("== training a poly-2 SVM on synthetic binarized digits (7x7) ==")
	ds := downsample(dataset.Digits(7, 12, 4)).Binarize(100)
	model, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	im, err := model.Quantize(12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d support vectors, %d classes, fixed-point accuracy %.2f\n",
		im.NumSV(), im.Classes, svm.Accuracy(im.Predict, ds.Test))

	fmt.Println("\n== compiling to a MOUSE program (one support vector per column) ==")
	mp, err := svm.CompileParallelMapping(im, 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d instructions, %d logic gates across %d columns, %d-bit scores\n",
		len(mp.Prog), mp.Gates, mp.Columns, mp.AccBits)

	mach := array.NewMachine(mtj.ModernSTT(), 1, 1024, mp.Columns)
	correct, hwMatches := 0, 0
	n := 5
	for _, s := range ds.Test[:n] {
		for j, rows := range mp.InputRows {
			for bi, row := range rows {
				bit := (s.X[j] >> bi) & 1
				for col := 0; col < mp.Columns; col++ {
					mach.Tiles[0].SetBit(row, col, bit)
				}
			}
		}
		ctl := controller.New(controller.ProgramStore(mp.Prog), mach)
		if err := ctl.Run(); err != nil {
			log.Fatal(err)
		}
		best, bestScore := 0, int64(0)
		for class := 0; class < im.Classes; class++ {
			bits := make([]int, len(mp.ScoreRows))
			for i, row := range mp.ScoreRows {
				bits[i] = mach.Tiles[0].Bit(row, mp.ClassColumn(class))
			}
			score := mp.ReadScore(bits)
			if class == 0 || score > bestScore {
				best, bestScore = class, score
			}
		}
		if best == im.Predict(s.X) {
			hwMatches++
		}
		if best == s.Label {
			correct++
		}
	}
	fmt.Printf("classified %d images in-array: %d/%d correct, %d/%d match the golden model exactly\n",
		n, correct, n, hwMatches, n)

	fmt.Println("\n== paper-scale SVM MNIST under a 60 µW harvester (Modern STT) ==")
	spec, err := workload.ByName("SVM MNIST")
	if err != nil {
		log.Fatal(err)
	}
	cfg := mtj.ModernSTT()
	runner := sim.NewRunner(energy.NewModel(cfg))
	h := power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	res, err := runner.Run(spec.Stream(), h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one inference: %.2f s total (%.1f ms computing, %.2f s charging), %.0f µJ, %d restarts\n",
		res.TotalLatency(), res.OnLatency*1e3, res.OffLatency, res.TotalEnergy()*1e6, res.Restarts)
}
