// Quickstart: the paper's application-mapping example (Section VII,
// Fig. 8) — two 2-bit additions performed in parallel, one per column.
//
// It shows the whole MOUSE workflow: compile arithmetic to a gate-level
// program, inspect the generated instructions, load operands into the
// array, execute through the memory controller, and read results back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mouse/internal/array"
	"mouse/internal/compile"
	"mouse/internal/controller"
	"mouse/internal/mtj"
)

func main() {
	// Compile: activate columns 0 and 1 in every tile, then add two
	// 2-bit words. The same instruction sequence executes in both
	// columns simultaneously — column-level parallelism.
	b := compile.NewBuilder(64)
	b.ActivateBroadcast([]uint16{0, 1})
	a := b.AllocWord(2, 0) // first addend (rows chosen by the allocator)
	c := b.AllocWord(2, 0) // second addend
	sum := b.AddWords(a, c)
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compiled %d instructions (%d logic gates) for a 2-bit add\n\n", len(prog), b.GateCount())
	fmt.Println("first instructions (MOUSE assembly, Fig. 6 formats):")
	for i, in := range prog {
		if i >= 8 {
			fmt.Printf("  ... %d more\n", len(prog)-i)
			break
		}
		fmt.Printf("  %2d: %s\n", i, in)
	}

	// Column 0 computes 2+1, column 1 computes 3+3 — the x and y of
	// Fig. 8.
	m := array.NewMachine(mtj.ModernSTT(), 1, 64, 2)
	load := func(col int, w compile.Word, v int) {
		for i, bit := range w {
			m.Tiles[0].SetBit(bit.Row, col, (v>>i)&1)
		}
	}
	load(0, a, 2)
	load(0, c, 1)
	load(1, a, 3)
	load(1, c, 3)

	ctl := controller.New(controller.ProgramStore(prog), m)
	if err := ctl.Run(); err != nil {
		log.Fatal(err)
	}

	read := func(col int, w compile.Word) int {
		v := 0
		for i, bit := range w {
			v |= m.Tiles[0].Bit(bit.Row, col) << i
		}
		return v
	}
	fmt.Printf("\ncolumn 0: 2 + 1 = %d\n", read(0, sum))
	fmt.Printf("column 1: 3 + 3 = %d\n", read(1, sum))
	fmt.Printf("\nthe sum occupies rows %v (LSB first), present in every active column\n", rows(sum))
}

func rows(w compile.Word) []int {
	out := make([]int, len(w))
	for i, bit := range w {
		out[i] = bit.Row
	}
	return out
}
