// Wearable scenario: human activity recognition on a body-heat
// harvester. A 1 cm² thermoelectric harvester on skin supplies roughly
// 60 µW (Section IX); this example runs the paper-scale HAR SVM under
// that budget across all three MOUSE configurations, and then sweeps the
// power source to show how completion time scales — the core trade-off
// a wearable designer faces.
//
//	go run ./examples/har_wearable
package main

import (
	"fmt"
	"log"

	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

func main() {
	spec, err := workload.ByName("SVM HAR")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HAR: %d support vectors over %d features, %d activity classes\n",
		spec.NumSV, spec.Features, spec.Classes)
	fmt.Printf("one inference = %d MOUSE instructions\n\n", spec.Instructions())

	fmt.Println("== one classification on 60 µW of body heat ==")
	for _, cfg := range mtj.Configs() {
		runner := sim.NewRunner(energy.NewModel(cfg))
		h := power.NewHarvester(power.Constant{W: 60e-6}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := runner.Run(spec.Stream(), h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %8.3f s/classification  %8.2f µJ  %5d power cycles  area %.1f mm²\n",
			cfg.Name, res.TotalLatency(), res.TotalEnergy()*1e6, res.Restarts,
			energy.Area(cfg, spec.MemBytes))
	}

	fmt.Println("\n== classifications per hour vs harvested power (SHE) ==")
	cfg := mtj.ProjectedSHE()
	runner := sim.NewRunner(energy.NewModel(cfg))
	for _, w := range []float64{20e-6, 60e-6, 175e-6, 500e-6, 2e-3} {
		h := power.NewHarvester(power.Constant{W: w}, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
		res, err := runner.Run(spec.Stream(), h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %7.0f µW: %8.1f classifications/hour (latency %.3f s)\n",
			w*1e6, 3600/res.TotalLatency(), res.TotalLatency())
	}

	fmt.Println("\n== a cloudy afternoon: the same inference on a fluctuating solar source ==")
	solar := power.Solar{Peak: 150e-6, Period: 2.0} // fast day/night cycle for demonstration
	h := power.NewHarvester(solar, cfg.CapC, cfg.CapVMin, cfg.CapVMax)
	res, err := runner.Run(spec.Stream(), h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  completed in %.3f s with %d unexpected outages — every one survived by\n", res.TotalLatency(), res.Restarts)
	fmt.Println("  re-issuing the stored Activate Columns instruction and repeating at most one instruction")
}
