package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenArgs is the small starved custom-SVM run the golden trace pins:
// a constant source weak enough to brown the run out tens of times, so
// the trace exercises every event type (charge, outages, interrupts,
// restores, replays, voltage samples). The simulation clock is fully
// deterministic and the writer formats timestamps with fixed precision,
// so the trace bytes are stable across platforms.
func goldenArgs(out string) []string {
	return []string{
		"-workload", "custom", "-features", "4", "-bits", "1", "-sv", "2",
		"-classes", "2", "-source", "constant", "-power", "1.5e-6",
		"-cap", "1e-7", "-vsample", "1e-4", "-out", out,
	}
}

func TestTraceGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout bytes.Buffer
	if err := run(goldenArgs(out), &stdout); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "custom-svm-starved.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from %s (run with -update to regenerate); got %d bytes, want %d",
			golden, len(got), len(want))
	}

	for _, line := range []string{"instructions", "outages", "replayed", "capacitor"} {
		if !strings.Contains(stdout.String(), line) {
			t.Errorf("summary missing %q:\n%s", line, stdout.String())
		}
	}
}

// TestTraceSchema walks every event of a generated trace and checks the
// Chrome trace_event invariants Perfetto relies on: a known phase, the
// single mouse process, non-negative monotonic-format timestamps, and
// the fields each phase requires.
func TestTraceSchema(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run(goldenArgs(out), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Name string         `json:"name"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	seen := map[string]int{}
	for i, ev := range doc.TraceEvents {
		seen[ev.Ph]++
		if ev.PID != 1 {
			t.Fatalf("event %d: pid %d, want 1", i, ev.PID)
		}
		if ev.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		switch ev.Ph {
		case "M":
			if ev.Args == nil {
				t.Fatalf("event %d: metadata without args", i)
			}
		case "X":
			if ev.TS == nil || ev.Dur == nil {
				t.Fatalf("event %d (%s): span missing ts/dur", i, ev.Name)
			}
			if *ev.TS < 0 || *ev.Dur < 0 {
				t.Fatalf("event %d (%s): negative ts %g / dur %g", i, ev.Name, *ev.TS, *ev.Dur)
			}
		case "i", "C":
			if ev.TS == nil || *ev.TS < 0 {
				t.Fatalf("event %d (%s): instant/counter without a valid ts", i, ev.Name)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	// A starved run must populate every track.
	for _, ph := range []string{"M", "X", "i", "C"} {
		if seen[ph] == 0 {
			t.Errorf("no %q events in a starved run: %v", ph, seen)
		}
	}
}

// TestStatsFileMatchesSummary runs the golden configuration with -stats
// and checks the JSON section agrees with the stdout summary, while the
// trace and stdout stay byte-identical to a run without the flag.
func TestStatsFileMatchesSummary(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "run.trace.json")
	var plainStdout bytes.Buffer
	if err := run(goldenArgs(out), &plainStdout); err != nil {
		t.Fatal(err)
	}
	plainTrace, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	statsFile := filepath.Join(dir, "stats.json")
	var stdout bytes.Buffer
	if err := run(append(goldenArgs(out), "-stats", statsFile), &stdout); err != nil {
		t.Fatal(err)
	}

	if plainStdout.String() != stdout.String() {
		t.Errorf("-stats changed stdout:\n%s\nvs\n%s", stdout.String(), plainStdout.String())
	}
	statsTrace, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainTrace, statsTrace) {
		t.Errorf("-stats changed the trace bytes")
	}

	data, err := os.ReadFile(statsFile)
	if err != nil {
		t.Fatal(err)
	}
	var sec struct {
		Instructions uint64 `json:"instructions"`
		Outages      uint64 `json:"outages"`
		Replays      uint64 `json:"replays"`
	}
	if err := json.Unmarshal(data, &sec); err != nil {
		t.Fatalf("stats file is not valid JSON: %v", err)
	}
	if sec.Instructions == 0 || sec.Outages == 0 {
		t.Errorf("stats section looks empty: %+v", sec)
	}
	// The summary's instruction count must agree with the JSON section.
	wantLine := "instructions  " + strconv.FormatUint(sec.Instructions, 10)
	if !strings.Contains(stdout.String(), wantLine) {
		t.Errorf("summary does not contain %q:\n%s", wantLine, stdout.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-config", "nonsense"},
		{"-source", "nonsense"},
		{"-workload", "nonsense"},
		{"positional"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

// TestTraceSourceEndOfTrace: a recorded power trace shorter than the
// run must be surfaced — the note names the tail policy that supplied
// the remainder — and -trace-file/-trace-tail plumb through ParseTrace.
func TestTraceSourceEndOfTrace(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "supply.txt")
	// Plenty of power, but the recording ends after 1 ms; a hold tail
	// keeps the final wattage so the run still completes.
	if err := os.WriteFile(traceFile, []byte("# short recording\n0 5e-5\n1e-3 5e-5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-workload", "custom", "-features", "4", "-bits", "1", "-sv", "2",
		"-classes", "2", "-source", "trace", "-trace-file", traceFile,
		"-trace-tail", "hold", "-cap", "1e-7", "-vsample", "0",
		"-out", filepath.Join(dir, "out.trace.json"),
	}
	var stdout bytes.Buffer
	if err := run(args, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "outlived its power trace") ||
		!strings.Contains(stdout.String(), `"hold" tail policy`) {
		t.Errorf("end-of-trace note missing:\n%s", stdout.String())
	}

	for name, extra := range map[string][]string{
		"missing file": {"-source", "trace", "-trace-file", filepath.Join(dir, "nope.txt")},
		"no file":      {"-source", "trace"},
		"bad tail":     {"-source", "trace", "-trace-file", traceFile, "-trace-tail", "forever"},
	} {
		if err := run(append([]string{"-out", filepath.Join(dir, "x.json")}, extra...), &bytes.Buffer{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
