// mousetrace runs one MOUSE workload under a harvested power source and
// records the run's timeline as Chrome trace_event JSON — outages,
// restore phases, coalesced instruction spans, and the capacitor
// voltage as a counter track — plus a telemetry summary on stdout.
//
// The output loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: the "machine" thread shows instruction and restore
// spans, the "power" thread shows the initial charge and every outage,
// and the "Vcap" counter draws the buffer voltage sawtooth between V_on
// and V_off.
//
// Usage:
//
//	mousetrace [flags]
//
//	-workload NAME   benchmark to run (default "SVM MNIST"; see mousebench
//	                 table4 for names), or "custom" with the flags below
//	-features N -bits N -sv N -classes N -mem BYTES   custom SVM shape
//	-config modern-stt|projected-stt|she              technology
//	-source solar|constant|rf|trace                   power source
//	-power W         source power: solar/RF peak or constant level
//	-period S        solar day/night period
//	-trace-file F    "seconds watts" power trace for -source trace
//	-trace-tail P    end-of-trace policy: hold, loop, zero
//	-cap F           capacitor override (farads)
//	-vsample S       voltage sample decimation (0 disables the track)
//	-out FILE        trace path (default: derived from the workload name)
//	-stats FILE      also write the telemetry section as indented JSON
//	                 (same probe.Section shape as mousebench -telemetry)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mouse/internal/energy"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/probe"
	"mouse/internal/sim"
	"mouse/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mousetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mousetrace", flag.ContinueOnError)
	fs.SetOutput(stdout)
	name := fs.String("workload", "SVM MNIST", `benchmark name, or "custom"`)
	features := fs.Int("features", 16, "custom SVM: input features")
	bits := fs.Int("bits", 8, "custom SVM: input bits")
	numSV := fs.Int("sv", 32, "custom SVM: support vectors")
	classes := fs.Int("classes", 2, "custom SVM: classes")
	memBytes := fs.Int64("mem", 1<<20, "custom SVM: provisioned array bytes")
	config := fs.String("config", "modern-stt", "technology: modern-stt, projected-stt, she")
	source := fs.String("source", "solar", "power source: solar, constant, rf, trace")
	watts := fs.Float64("power", 100e-6, "source power in watts (solar/RF peak, constant level)")
	period := fs.Float64("period", 0.5, "solar day/night period in seconds")
	traceFile := fs.String("trace-file", "", `power trace file for -source trace ("seconds watts" per line)`)
	traceTail := fs.String("trace-tail", "hold", "end-of-trace policy: hold, loop, zero")
	capF := fs.Float64("cap", 0, "capacitor override in farads (0 = technology default)")
	vsample := fs.Float64("vsample", 1e-3, "capacitor voltage sample interval in seconds (0 = no voltage track)")
	outPath := fs.String("out", "", "trace output path (default derived from the workload name)")
	statsPath := fs.String("stats", "", "also write the probe telemetry section to this file as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q; mousetrace takes only flags", fs.Args())
	}

	var cfg *mtj.Config
	switch *config {
	case "modern-stt":
		cfg = mtj.ModernSTT()
	case "projected-stt":
		cfg = mtj.ProjectedSTT()
	case "she":
		cfg = mtj.ProjectedSHE()
	default:
		return fmt.Errorf("unknown config %q", *config)
	}

	var spec workload.Spec
	var err error
	if *name == "custom" {
		spec, err = workload.CustomSVM("custom SVM", *features, *bits, *numSV, *classes, *memBytes)
	} else {
		spec, err = workload.ByName(*name)
	}
	if err != nil {
		return err
	}

	var src power.Source
	// powerTrace stays non-nil only for -source trace, so the post-run
	// report can surface whether the run outlived the recording.
	var powerTrace *power.Trace
	switch *source {
	case "solar":
		src = power.Solar{Peak: *watts, Period: *period}
	case "constant":
		src = power.Constant{W: *watts}
	case "rf":
		// Mean dwell times mirror the solar period's duty so the flags
		// stay shared; the seed is fixed for reproducible traces.
		src = power.NewRFBursts(*watts, *period/2, *period/2, 1)
	case "trace":
		if *traceFile == "" {
			return fmt.Errorf("-source trace requires -trace-file")
		}
		tail, err := power.ParseTailPolicy(*traceTail)
		if err != nil {
			return err
		}
		tf, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tr, err := power.ParseTrace(tf, tail)
		tf.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *traceFile, err)
		}
		powerTrace = &tr
		src = tr
	default:
		return fmt.Errorf("unknown source %q", *source)
	}

	capacitance := cfg.CapC
	if *capF > 0 {
		capacitance = *capF
	}

	path := *outPath
	if path == "" {
		slug := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				return r
			case r >= 'A' && r <= 'Z':
				return r + ('a' - 'A')
			default:
				return '-'
			}
		}, spec.Name)
		path = strings.Trim(slug, "-") + ".trace.json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}

	stats := &probe.Stats{}
	tw := probe.NewTraceWriter(f)

	r := sim.NewRunner(energy.NewModel(cfg))
	r.Obs = probe.Multi{stats, tw}
	h := power.NewHarvester(src, capacitance, cfg.CapVMin, cfg.CapVMax)
	h.Obs = r.Obs
	h.SampleEvery = *vsample

	res, runErr := r.Run(spec.Stream(), h)
	if err := tw.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if powerTrace != nil && h.Now() > powerTrace.End() {
		// Surface end-of-trace explicitly: past this point the numbers
		// reflect the tail policy, not recorded data.
		fmt.Fprintf(stdout, "note: the run outlived its power trace (trace ends at %.6g s, run ended at %.6g s); the %q tail policy supplied the remainder\n",
			powerTrace.End(), h.Now(), powerTrace.Tail)
	}
	if runErr != nil {
		return runErr
	}

	sec := stats.Section()
	if *statsPath != "" {
		sf, err := os.Create(*statsPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(sf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sec); err != nil {
			sf.Close()
			return fmt.Errorf("writing %s: %w", *statsPath, err)
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "workload      %s on %s under %s\n", spec.Name, cfg.Name, src.Name())
	fmt.Fprintf(stdout, "latency       %.6g s (on %.6g s, charging %.6g s)\n",
		res.TotalLatency(), res.OnLatency, res.OffLatency)
	if err := sec.WriteSummary(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace         %s — open in https://ui.perfetto.dev or chrome://tracing\n", path)
	return nil
}
