package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mouse/internal/fault"
)

// TestGoldenJSONReport runs a bounded machine-layer sweep and checks the
// emitted mouse-fault/v1 report field by field, then re-runs the same
// sweep at a different parallelism and requires byte-identical
// normalized output.
func TestGoldenJSONReport(t *testing.T) {
	args := []string{
		"-workload", "tiny-svm", "-stride", "9", "-fracs", "0,0.5",
		"-json", "-normalize", "-parallel", "1",
	}
	var a bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}

	var rep fault.Report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != fault.Schema {
		t.Errorf("schema %q, want %q", rep.Schema, fault.Schema)
	}
	if rep.Tool != "mousefault" {
		t.Errorf("tool %q, want mousefault", rep.Tool)
	}
	if rep.Layer != fault.LayerMachine {
		t.Errorf("layer %q, want %q", rep.Layer, fault.LayerMachine)
	}
	if rep.Workload != "tiny-svm" {
		t.Errorf("workload %q, want tiny-svm", rep.Workload)
	}
	if rep.Instructions == 0 {
		t.Error("golden instruction count missing")
	}
	wantPoints := (int(rep.Instructions) + 8) / 9 * 2 // ceil(n/9) boundaries × 2 fracs
	if rep.Points != wantPoints {
		t.Errorf("points %d, want %d", rep.Points, wantPoints)
	}
	if len(rep.Verdicts) != rep.Points {
		t.Errorf("%d verdicts for %d points", len(rep.Verdicts), rep.Points)
	}
	if !rep.AllEquivalent() {
		t.Errorf("%d/%d points not crash-equivalent", rep.Points-rep.Equivalent, rep.Points)
	}
	if rep.MaxReplays > 1 {
		t.Errorf("max replays %d, claim allows at most 1", rep.MaxReplays)
	}
	if rep.Parallelism != 0 || rep.WallSeconds != 0 {
		t.Errorf("normalized report kept host fields: parallelism %d, wall %g", rep.Parallelism, rep.WallSeconds)
	}

	var b bytes.Buffer
	args[len(args)-1] = "4" // same sweep, different worker bound
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("normalized reports differ between parallelism 1 and 4")
	}
}

// TestTraceLayerSummary covers the trace layer's human-readable path and
// the -out redirection.
func TestTraceLayerSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var stdout bytes.Buffer
	err := run([]string{"-layer", "trace", "-stride", "40", "-fracs", "0.5", "-out", path}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Errorf("-out still wrote to stdout: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[trace]") || !strings.Contains(string(data), "crash-equivalent") {
		t.Errorf("summary missing layer/verdict: %q", data)
	}
}

// TestBadFlags: every invalid invocation is rejected before any sweep.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-layer", "quantum"},
		{"-config", "cmos"},
		{"-workload", "nope"},
		{"-layer", "trace", "-workload", "tiny-svm"},
		{"-layer", "trace", "-scalar"},
		{"-fracs", "0.2,oops"},
		{"-fracs", "1.0"},
		{"-fracs", "-0.1"},
		{"positional"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestParseFracs covers the fraction-list parser directly.
func TestParseFracs(t *testing.T) {
	got, err := parseFracs(" 0, 0.5 ,0.97")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.97}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if fracs, err := parseFracs(""); err != nil || fracs != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", fracs, err)
	}
}

// TestNotEquivalentExit: errNotEquivalent is a distinct, matchable error
// (the CLI's non-zero exit contract), even though the built-in workloads
// never trigger it.
func TestNotEquivalentExit(t *testing.T) {
	wrapped := errors.New("wrapper")
	if errors.Is(wrapped, errNotEquivalent) {
		t.Fatal("unrelated error matches errNotEquivalent")
	}
}
