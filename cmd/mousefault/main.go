// mousefault adversarially verifies MOUSE's intermittency claim: it
// crashes a workload at every instruction boundary (and at swept
// intra-instruction µ-phase fractions) and differentially checks each
// crashed run against a continuous-power golden run. A point is
// crash-equivalent when the recovered run ends with byte-identical
// cells and memory buffer, the same committed-instruction count,
// exactly one outage, and at most one replayed instruction — the
// paper's "at most one re-executed instruction per power loss".
//
// The exit status is the verdict: 0 when every injection point is
// crash-equivalent, 1 otherwise (or on any setup error), so CI can run
// mousefault as a gate.
//
// Usage:
//
//	mousefault [flags]
//
//	-layer machine|trace   bit-accurate machine sweep (default) or the
//	                       analytic trace-layer sweep
//	-workload NAME         arith, tiny-svm, tiny-bnn (machine layer);
//	                       the trace layer supports arith
//	-scalar                pin the machine to the scalar logic path
//	-config modern-stt|projected-stt|she   technology
//	-fracs F1,F2,...       µ-phase fractions in [0,1) (default: the
//	                       full band grid)
//	-stride N              sample every Nth boundary (bounded smoke
//	                       sweeps; 1 = exhaustive)
//	-random N -seed S      replace the grid with N seeded random points
//	-parallel N            sweep worker bound (0 = one per CPU)
//	-json                  emit the mouse-fault/v1 report as JSON
//	-normalize             zero host-dependent report fields (with -json)
//	-out FILE              write output to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mouse/internal/fault"
	"mouse/internal/mtj"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mousefault:", err)
		os.Exit(1)
	}
}

// errNotEquivalent signals a completed sweep that found non-equivalent
// points: the report was already written, only the exit status is left.
var errNotEquivalent = fmt.Errorf("crash-equivalence violated")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mousefault", flag.ContinueOnError)
	fs.SetOutput(stdout)
	layer := fs.String("layer", "machine", "sweep layer: machine, trace")
	name := fs.String("workload", "arith", "workload name (see -h)")
	scalar := fs.Bool("scalar", false, "pin the machine to the scalar logic path")
	config := fs.String("config", "modern-stt", "technology: modern-stt, projected-stt, she")
	fracsSpec := fs.String("fracs", "", "comma-separated µ-phase fractions in [0,1); empty = full band grid")
	stride := fs.Int("stride", 1, "sample every Nth instruction boundary")
	random := fs.Int("random", 0, "run N seeded random points instead of the grid")
	seed := fs.Int64("seed", 1, "random campaign seed")
	parallel := fs.Int("parallel", 0, "sweep worker bound; 0 means one per CPU")
	asJSON := fs.Bool("json", false, "emit the mouse-fault/v1 report as JSON")
	normalize := fs.Bool("normalize", false, "zero host-dependent report fields (parallelism, wall time)")
	outPath := fs.String("out", "", "write output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q; mousefault takes only flags", fs.Args())
	}

	var cfg *mtj.Config
	switch *config {
	case "modern-stt":
		cfg = mtj.ModernSTT()
	case "projected-stt":
		cfg = mtj.ProjectedSTT()
	case "she":
		cfg = mtj.ProjectedSHE()
	default:
		return fmt.Errorf("unknown config %q", *config)
	}

	fracs, err := parseFracs(*fracsSpec)
	if err != nil {
		return err
	}
	opts := fault.Options{
		Fracs:   fracs,
		Stride:  *stride,
		Random:  *random,
		Seed:    *seed,
		Workers: *parallel,
	}

	var rep *fault.Report
	switch *layer {
	case "machine":
		w, err := fault.LookupWorkload(cfg, *name)
		if err != nil {
			return err
		}
		if *scalar {
			w = w.ForceScalar()
		}
		rep, err = fault.Sweep(w, opts)
		if err != nil {
			return err
		}
	case "trace":
		if *name != "arith" {
			return fmt.Errorf("the trace layer supports workload %q only (got %q)", "arith", *name)
		}
		if *scalar {
			return fmt.Errorf("-scalar applies to the machine layer only")
		}
		w, err := fault.ArithStream(cfg)
		if err != nil {
			return err
		}
		rep, err = fault.SweepStream(w, opts)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown layer %q (machine, trace)", *layer)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *asJSON {
		if *normalize {
			rep.Normalize()
		}
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
	} else {
		rep.Summary(out)
	}
	if !rep.AllEquivalent() {
		return fmt.Errorf("%w: %d/%d injection points diverged", errNotEquivalent, rep.Points-rep.Equivalent, rep.Points)
	}
	return nil
}

// parseFracs parses the -fracs flag: a comma-separated list of µ-phase
// fractions, each in [0, 1).
func parseFracs(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	fracs := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q: %w", p, err)
		}
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("fraction %g outside [0, 1)", f)
		}
		fracs = append(fracs, f)
	}
	return fracs, nil
}
