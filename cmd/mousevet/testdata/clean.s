# A well-formed program: activation first, every gate output preset
# with the polarity its gate requires, the buffer loaded before stored.
ACT * R 0 4 1     ; activate columns 0..3 everywhere
PRE0 1            ; NAND preset
NAND2 0 2 1
PRE0 4            ; NOT preset
NOT 1 4
RD 0 4            ; move the result row to tile 1
WR 1 5 1
