# Replay safety: the read-modify-write of tile 0 row 0 is the canonical
# WAR hazard when both halves share one checkpoint region; lint with
# -interval 2. With MOUSE's per-instruction checkpointing it is safe.
RD 0 0
WR 0 0
