# Define-before-use violations: the buffer is stored before any read
# loads it, a gate fires on an un-preset output row, and another gets
# the wrong preset polarity.
ACT * R 0 4 1
WR 0 3            ; buffer never loaded
NAND2 0 2 1       ; output row 1 never preset (stale gate result on later passes)
PRE1 4            ; NOT needs PRE0
NOT 1 4
