# Geometry bounds violations; lint with -tiles 2 -rows 16 -cols 8.
ACT T0 C 9        ; column 9 beyond an 8-column machine
RD 5 3            ; tile 5 beyond a 2-tile machine
PRE0 20           ; row 20 beyond a 16-row machine
WR 0 1 12         ; rotation 12 wraps at 8 columns
