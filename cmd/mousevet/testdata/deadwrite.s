# Dead writes: a preset and a buffer load overwritten before use.
ACT * R 0 4 1
PRE1 1            ; overwritten by the PRE0 below, never read
PRE0 1
NAND2 0 2 1
RD 0 1            ; buffer discarded by the next read
RD 0 3
WR 1 5
