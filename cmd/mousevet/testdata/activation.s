# Activation discipline: a preset before any ACT touches nothing, and
# an ACT replaced before use configured nothing (ACT replaces, it does
# not accumulate).
PRE0 1            ; no live activation yet
ACT * C 0 1
ACT * R 0 4 1     ; replaces the ACT above before anything used it
PRE0 3
NAND2 0 2 3
