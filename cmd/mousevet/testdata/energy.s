# Energy forward progress: lint with -cap 1e-12 to model an energy
# buffer too small to ever finish an instruction (Section I's
# non-termination hazard).
ACT * R 0 1024 1
PRE0 1
NAND2 0 2 1
