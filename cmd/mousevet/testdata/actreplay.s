# Activation-restore hazard: with -interval 4, the second region's
# preset executes under the 4-column ACT carried in from region one,
# but the region then replaces the configuration. A crash after the new
# ACT restores *it* on restart (the protocol keeps only the last
# executed ACT, Section IV-D), so the replayed preset lands on the
# wrong column set.
ACT * R 0 4 1
PRE0 1
NAND2 0 2 1
PRE0 3
PRE0 5            ; region two starts: still the 4-column activation
ACT * R 0 8 1     ; replaced mid-region: unsafe to replay the preset
NAND2 0 2 5
