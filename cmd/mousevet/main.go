// mousevet statically verifies MOUSE programs before they are deployed:
// it runs the internal/lint rule suite — address bounds, define-before-
// use, dead writes, column-activation discipline, checkpoint replay
// safety, energy forward progress, and per-region worst-case energy —
// over assembly sources and binary program images, and exits non-zero
// when any error-severity finding would make the program misbehave at
// inference time.
//
// Usage:
//
//	mousevet [flags] file.s file.img ...
//
//	-json                                  machine-readable report
//	-all                                   also print info-severity findings
//	-werror                                treat warnings as errors for the exit code
//	-rules bounds,energy                   run only the listed rules (empty = all; "help" lists them)
//	-tiles N -rows N -cols N               deployed geometry (default: full ISA space)
//	-config modern-stt|projected-stt|she   technology for the energy rules
//	-cap F                                 capacitor override in farads
//	-interval N                            checkpoint interval for the replay and wce rules
//	-cert                                  emit the per-region worst-case-energy certificate
//
// Exit codes are a contract, for CI use:
//
//	0  no error-severity findings (warnings and infos may exist, unless
//	   -werror, which promotes warnings to the error exit)
//	1  at least one error-severity finding (or warning under -werror)
//	2  usage, configuration, I/O, or parse failure — nothing was verified
//
// Inputs are detected by content: files beginning with the MOUSEPRG
// magic are decoded as images; everything else is parsed as assembly,
// with diagnostics mapped back to source lines.
//
// With -cert, mousevet emits the mouse-wce/v1 certificate produced by
// lint.Certify on stdout (text diagnostics move to stderr so the
// certificate pipes cleanly): one worst-case-energy bound per checkpoint region,
// proving (or refuting, via the wce rule's diagnostics and exit 1) that
// every region completes within one capacitor discharge — the bound the
// checkpoint-placement optimizer consumes. Combined with -cap, this
// answers "does this program make forward progress on an F-farad
// buffer?" before deployment.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mouse/internal/isa"
	"mouse/internal/lint"
	"mouse/internal/mtj"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mousevet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// imageMagic mirrors the isa image header for content sniffing.
var imageMagic = []byte("MOUSEPRG")

// fileReport pairs a lint report with its source for JSON output.
type fileReport struct {
	File        string            `json:"file"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	// Certificate is the worst-case-energy certificate, present with
	// -cert when the program validates.
	Certificate *lint.Certificate `json:"certificate,omitempty"`
}

// run executes the CLI and returns the process exit code per the
// contract in the package comment. Usage and I/O problems are returned
// as errors (exit 2 in main). With -cert (and without -json) text
// diagnostics go to stderr so stdout carries the certificate alone and
// pipes cleanly into a JSON consumer.
func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("mousevet", flag.ContinueOnError)
	fs.SetOutput(stdout)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	all := fs.Bool("all", false, "also print info-severity findings")
	werror := fs.Bool("werror", false, "treat warnings as errors for the exit code")
	rules := fs.String("rules", "", "comma-separated rule IDs to run (empty = all; \"help\" lists them)")
	tiles := fs.Int("tiles", isa.MaxTiles, "deployed tile count")
	rows := fs.Int("rows", isa.Rows, "rows per tile")
	cols := fs.Int("cols", isa.Cols, "columns per tile")
	config := fs.String("config", "modern-stt", "technology: modern-stt, projected-stt, she")
	capF := fs.Float64("cap", 0, "capacitor override in farads (0 = technology default)")
	interval := fs.Int("interval", 1, "checkpoint interval verified by the replay and wce rules")
	cert := fs.Bool("cert", false, "emit the per-region worst-case-energy certificate")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	if *rules == "help" {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.ID, r.Doc)
		}
		return 0, nil
	}
	var ruleList []string
	if *rules != "" {
		known := make(map[string]bool)
		for _, r := range lint.Rules() {
			known[r.ID] = true
		}
		for _, id := range strings.Split(*rules, ",") {
			id = strings.TrimSpace(id)
			if !known[id] {
				return 0, fmt.Errorf("unknown rule %q (try -rules help)", id)
			}
			ruleList = append(ruleList, id)
		}
	}
	if fs.NArg() == 0 {
		return 0, fmt.Errorf("usage: mousevet [flags] <file.s|file.img>...")
	}

	var cfg *mtj.Config
	switch *config {
	case "modern-stt":
		cfg = mtj.ModernSTT()
	case "projected-stt":
		cfg = mtj.ProjectedSTT()
	case "she":
		cfg = mtj.ProjectedSHE()
	default:
		return 0, fmt.Errorf("unknown config %q", *config)
	}
	if *capF < 0 {
		return 0, fmt.Errorf("-cap must be positive, got %g", *capF)
	}
	if *capF > 0 {
		c := *cfg
		c.CapC = *capF
		cfg = &c
	}

	opts := lint.Options{
		Geometry:           lint.Geometry{Tiles: *tiles, Rows: *rows, Cols: *cols},
		Config:             cfg,
		CheckpointInterval: *interval,
		Rules:              ruleList,
	}

	var (
		reports  []fileReport
		exitCode int
	)
	for _, path := range fs.Args() {
		prog, lineMap, err := loadFile(path)
		if err != nil {
			return 0, err
		}
		opts.LineMap = lineMap
		rep := lint.Lint(prog, opts)
		if rep.HasErrors() || (*werror && rep.Count(lint.Warning) > 0) {
			exitCode = 1
		}

		var c *lint.Certificate
		if *cert {
			// Certification needs a fully valid stream; when it is not,
			// the report already carries the invalid-instruction errors.
			c, _ = lint.Certify(prog, opts)
		}

		if *jsonOut {
			fr := fileReport{File: path, Diagnostics: rep.Diagnostics, Certificate: c}
			if fr.Diagnostics == nil {
				fr.Diagnostics = []lint.Diagnostic{}
			}
			reports = append(reports, fr)
			continue
		}
		diagOut := stdout
		if *cert {
			diagOut = stderr
		}
		for _, d := range rep.Diagnostics {
			if d.Severity == lint.Info && !*all {
				continue
			}
			fmt.Fprintf(diagOut, "%s:%s\n", path, diagText(d))
		}
		if c != nil {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(c); err != nil {
				return 0, err
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 0, err
		}
	}
	return exitCode, nil
}

// diagText renders a diagnostic for the file-prefixed text output:
// source line when known, instruction index otherwise.
func diagText(d lint.Diagnostic) string {
	switch {
	case d.Line > 0:
		return fmt.Sprintf("%d: %s: %s [%s]", d.Line, d.Severity, d.Message, d.Rule)
	case d.Index >= 0:
		return fmt.Sprintf("#%d: %s: %s [%s]", d.Index, d.Severity, d.Message, d.Rule)
	default:
		return fmt.Sprintf(" %s: %s [%s]", d.Severity, d.Message, d.Rule)
	}
}

// loadFile loads one program — image or assembly, detected by content —
// returning the instruction stream and, for assembly, the line map.
func loadFile(path string) (isa.Program, []int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if bytes.HasPrefix(data, imageMagic) {
		prog, err := isa.ReadImage(bytes.NewReader(data))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return prog, nil, nil
	}
	prog, lines, err := isa.ParseLines(bytes.NewReader(data))
	if err != nil {
		var pe *isa.ParseError
		if errors.As(err, &pe) {
			return nil, nil, fmt.Errorf("%s:%d: %v", path, pe.Line, pe.Err)
		}
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, lines, nil
}
