package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/lint"
)

// The golden cases pair one testdata program with the flag set its header
// comment documents and the exact text output the CLI must produce.
var goldenCases = []struct {
	name string
	args []string
	exit int
}{
	{"clean", []string{"testdata/clean.s"}, 0},
	{"bounds", []string{"-tiles", "2", "-rows", "16", "-cols", "8", "-rules", "bounds", "testdata/bounds.s"}, 1},
	{"defuse", []string{"-rules", "def-use", "testdata/defuse.s"}, 1},
	{"deadwrite", []string{"-rules", "dead-write", "testdata/deadwrite.s"}, 0},
	{"activation", []string{"-rules", "activation", "testdata/activation.s"}, 1},
	{"replay", []string{"-interval", "2", "-rules", "replay", "testdata/replay.s"}, 1},
	{"actreplay", []string{"-interval", "4", "-rules", "replay", "testdata/actreplay.s"}, 1},
	{"energy", []string{"-cap", "1e-12", "-rules", "energy", "testdata/energy.s"}, 1},
	// -werror promotes the dead-write warnings to the error exit while
	// leaving the printed report unchanged.
	{"werror", []string{"-werror", "-rules", "dead-write", "testdata/deadwrite.s"}, 1},
	// -cert emits the per-region worst-case-energy certificate; a clean
	// feasible program prints the certificate alone and exits 0.
	{"cert", []string{"-cert", "-interval", "3", "testdata/clean.s"}, 0},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			code, err := run(tc.args, &out, &out)
			if err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			if code != tc.exit {
				t.Errorf("exit code = %d, want %d", code, tc.exit)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.name+".want"))
			if err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("output mismatch:\ngot:\n%swant:\n%s", out.String(), want)
			}
		})
	}
}

// The exit-code contract: 0 clean, 1 findings (warnings only under
// -werror), 2 (an error return) for usage problems.
func TestWErrorContract(t *testing.T) {
	var out bytes.Buffer
	// Without -werror, warnings exit 0.
	code, err := run([]string{"-rules", "dead-write", "testdata/deadwrite.s"}, &out, &out)
	if err != nil || code != 0 {
		t.Fatalf("warnings without -werror: code=%d err=%v", code, err)
	}
	// With -werror, the same warnings exit 1.
	code, err = run([]string{"-werror", "-rules", "dead-write", "testdata/deadwrite.s"}, &out, &out)
	if err != nil || code != 1 {
		t.Fatalf("warnings with -werror: code=%d err=%v", code, err)
	}
	// A clean file stays clean under -werror (infos do not promote).
	code, err = run([]string{"-werror", "testdata/clean.s"}, &out, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean file with -werror: code=%d err=%v", code, err)
	}
}

// -json -cert attaches the certificate to the file report, and the
// whole structure round-trips through encoding/json.
func TestJSONCertificate(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-json", "-cert", "-interval", "3", "testdata/clean.s"}, &out, &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	var reports []fileReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	c := reports[0].Certificate
	if c == nil {
		t.Fatal("certificate missing from JSON report")
	}
	if c.Schema != lint.CertSchema || !c.Feasible || len(c.Regions) != 3 {
		t.Errorf("unexpected certificate: %+v", c)
	}
	// A tiny capacitor flips the verdict and the exit code together.
	out.Reset()
	code, err = run([]string{"-json", "-cert", "-cap", "1e-12", "-interval", "3", "testdata/clean.s"}, &out, &out)
	if err != nil || code != 1 {
		t.Fatalf("infeasible cap: code=%d err=%v", code, err)
	}
	reports = nil
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if c := reports[0].Certificate; c == nil || c.Feasible {
		t.Errorf("tiny capacitor should refute feasibility: %+v", c)
	}
}

func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-json", "-rules", "def-use", "testdata/defuse.s"}, &out, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var reports []fileReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].File != "testdata/defuse.s" {
		t.Fatalf("unexpected report set: %+v", reports)
	}
	// JSON mode carries the full report, infos included.
	errors := 0
	for _, d := range reports[0].Diagnostics {
		if d.Severity == lint.Error {
			errors++
		}
		if d.Rule != "def-use" {
			t.Errorf("diagnostic from rule %q, want def-use", d.Rule)
		}
		if d.Line == 0 {
			t.Errorf("diagnostic missing source line: %+v", d)
		}
	}
	if errors != 3 {
		t.Fatalf("got %d error diagnostics, want 3: %+v", errors, reports[0].Diagnostics)
	}
}

// A binary image is sniffed by its MOUSEPRG magic and linted without a
// line map, so diagnostics fall back to instruction indices.
func TestLintBinaryImage(t *testing.T) {
	src, err := os.Open("testdata/defuse.s")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	prog, _, err := isa.ParseLines(src)
	if err != nil {
		t.Fatal(err)
	}
	img := filepath.Join(t.TempDir(), "defuse.img")
	f, err := os.Create(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := isa.WriteImage(prog, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code, err := run([]string{"-rules", "def-use", img}, &out, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "#1:") {
		t.Errorf("image diagnostics should use #index positions, got:\n%s", out.String())
	}
}

// The shipped demonstration program must lint clean under the default
// full geometry and energy configuration.
func TestPairNANDIsClean(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"../mouseasm/testdata/pair_nand.s"}, &out, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || out.Len() != 0 {
		t.Errorf("pair_nand.s should be clean, exit=%d output:\n%s", code, out.String())
	}
}

func TestAllShowsInfos(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-all", "testdata/clean.s"}, &out, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "info:") {
		t.Errorf("-all should surface info diagnostics (preloaded operands), got:\n%s", out.String())
	}
}

func TestRulesHelp(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-rules", "help"}, &out, &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	for _, id := range []string{"bounds", "def-use", "dead-write", "activation", "replay", "energy"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("rule listing missing %q:\n%s", id, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{}, &out, &out); err == nil {
		t.Error("no files should be a usage error")
	}
	if _, err := run([]string{"-rules", "no-such-rule", "testdata/clean.s"}, &out, &out); err == nil {
		t.Error("unknown rule should be an error")
	}
	if _, err := run([]string{"testdata/missing.s"}, &out, &out); err == nil {
		t.Error("missing file should be an error")
	}
	if _, err := run([]string{"-config", "bogus", "testdata/clean.s"}, &out, &out); err == nil {
		t.Error("unknown config should be an error")
	}
}

// With -cert, diagnostics move to stderr so stdout is the bare
// certificate and pipes cleanly into a JSON consumer even when the
// rules fire.
func TestCertStdoutIsPureJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// 100 nF keeps every region feasible but trips the headroom warning.
	code, err := run([]string{"-cert", "-interval", "3", "-cap", "1e-7", "testdata/clean.s"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	var c lint.Certificate
	if err := json.Unmarshal(stdout.Bytes(), &c); err != nil {
		t.Fatalf("stdout is not a bare certificate: %v\n%s", err, stdout.String())
	}
	if c.Schema != lint.CertSchema || !c.Feasible {
		t.Errorf("unexpected certificate: %+v", c)
	}
	if !strings.Contains(stderr.String(), "[wce]") {
		t.Errorf("headroom warnings should land on stderr, got:\n%s", stderr.String())
	}
}

// A parse failure must carry the file and line of the bad statement.
func TestParseErrorHasLine(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(bad, []byte("ACT * R 0 4 1\nBOGUS 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, err := run([]string{bad}, &out, &out)
	if err == nil || !strings.Contains(err.Error(), bad+":2:") {
		t.Errorf("want error mentioning %s:2:, got %v", bad, err)
	}
}
