// mousetrain trains the paper's classifier families on the synthetic
// stand-in datasets and reports accuracies (the accuracy column of
// Table IV uses real MNIST/HAR/ADULT, which cannot ship offline; see
// DESIGN.md for the substitution rationale).
//
// Usage:
//
//	mousetrain [-model svm|bnn|speech|all] [-seed N] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mouse/internal/baseline"
	"mouse/internal/bnn"
	"mouse/internal/dataset"
	"mouse/internal/svm"
)

func main() {
	model := flag.String("model", "all", "svm, bnn, speech, or all")
	seed := flag.Int64("seed", 1, "dataset seed")
	quick := flag.Bool("quick", false, "smaller datasets for a fast run")
	flag.Parse()

	trainN, testN := 40, 15
	if *quick {
		trainN, testN = 15, 8
	}
	if err := run(*model, *seed, trainN, testN, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mousetrain:", err)
		os.Exit(1)
	}
}

// run executes the selected training suites at the given per-class
// dataset sizes.
func run(model string, seed int64, trainN, testN int, out io.Writer) error {
	matched := false
	if model == "svm" || model == "all" {
		matched = true
		if err := runSVM(seed, trainN, testN, out); err != nil {
			return err
		}
	}
	if model == "bnn" || model == "all" {
		matched = true
		if err := runBNN(seed, trainN, testN, out); err != nil {
			return err
		}
	}
	if model == "speech" || model == "all" {
		matched = true
		if err := runSpeech(seed, trainN*15, testN*15, out); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown model %q", model)
	}
	return nil
}

func runSVM(seed int64, trainN, testN int, out io.Writer) error {
	fmt.Fprintln(out, "SVM (poly-2 kernel, one-vs-rest), synthetic datasets")
	digits := dataset.Digits(seed, trainN, testN)
	sets := []*dataset.Set{
		digits,
		digits.Binarize(100),
		dataset.HAR(seed+1, trainN, testN),
		dataset.Adult(seed+2, trainN*10, testN*10),
	}
	for _, ds := range sets {
		m, err := svm.Train(ds, svm.DefaultTrainConfig())
		if err != nil {
			return err
		}
		acc := svm.Accuracy(m.Predict, ds.Test)
		im, err := m.Quantize(16)
		if err != nil {
			return err
		}
		qacc := svm.Accuracy(im.Predict, ds.Test)
		fmt.Fprintf(out, "  %-22s #SV=%-5d float acc=%.3f  fixed-point acc=%.3f\n", ds.Name, m.NumSV(), acc, qacc)
	}
	return nil
}

func runBNN(seed int64, trainN, testN int, out io.Writer) error {
	fmt.Fprintln(out, "BNN (straight-through estimator), synthetic digits")
	digits := dataset.Digits(seed+10, trainN, testN).Binarize(100)
	cfg := bnn.Config{Name: "FINN-proxy", In: 784, Hidden: []int{64, 64}, Out: 10, InputBits: 1}
	// Wide binarized layers want a low learning rate: ±1 sums make the
	// effective gradient scale grow with fan-in.
	net, err := bnn.Train(digits, cfg, bnn.TrainConfig{Epochs: 30, LR: 0.002, Seed: 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-22s layers=%v acc=%.3f\n", cfg.Name, cfg.Widths(), bnn.Accuracy(net, digits.Test))

	raw := dataset.Digits(seed+11, trainN, testN)
	cfg8 := bnn.Config{Name: "FP-BNN-proxy", In: 784, Hidden: []int{64, 64}, Out: 10, InputBits: 8}
	net8, err := bnn.Train(raw, cfg8, bnn.TrainConfig{Epochs: 20, LR: 0.005, Seed: 3})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-22s layers=%v acc=%.3f\n", cfg8.Name, cfg8.Widths(), bnn.Accuracy(net8, raw.Test))
	return nil
}

// runSpeech reproduces the Section III observation: the poly-2 SVM
// cannot learn the speech task; a neural network can.
func runSpeech(seed int64, trainN, testN int, out io.Writer) error {
	fmt.Fprintln(out, "Speech task (Section III: SVMs fail, networks succeed)")
	ds := dataset.Speech(seed+20, trainN, testN)
	m, err := svm.Train(ds, svm.DefaultTrainConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-22s acc=%.3f (chance is 0.500)\n", "SVM poly-2", svm.Accuracy(m.Predict, ds.Test))
	mlp, err := baseline.TrainMLP(ds, baseline.MLPConfig{Hidden: []int{32, 16}, Epochs: 60, LR: 0.01, Seed: 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-22s acc=%.3f\n", "neural network (MLP)", baseline.MLPAccuracy(mlp, ds.Test))
	return nil
}
