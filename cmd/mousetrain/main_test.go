package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("training suite skipped in -short mode")
	}
	var out bytes.Buffer
	// Minimal dataset sizes keep the whole suite to a few seconds.
	if err := run("all", 1, 4, 2, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"MNIST-syn", "binarized", "HAR-syn", "ADULT-syn",
		"FINN-proxy", "FP-BNN-proxy", "Speech task", "neural network",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSelectsModels(t *testing.T) {
	if testing.Short() {
		t.Skip("training suite skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run("svm", 2, 3, 2, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "FINN-proxy") {
		t.Errorf("svm-only run trained the BNN")
	}
	if err := run("frob", 1, 2, 2, &out); err == nil {
		t.Errorf("unknown model accepted")
	}
}
