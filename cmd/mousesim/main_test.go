package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mouse/internal/isa"
	"mouse/internal/mtj"
)

// writeImage assembles a small program image into dir.
func writeImage(t *testing.T, dir string) string {
	t.Helper()
	prog := isa.Program{
		isa.ActRange(true, 0, 0, 4, 1),
		// Row 0 and 2 start at 0 everywhere; NAND(0,0)=1 into row 1.
		isa.Preset(1, mtj.P),
		isa.Logic(mtj.NAND2, []int{0, 2}, 1),
		// NOT of row 1 → row 2 becomes 0 (kept 0).
		isa.Preset(3, mtj.P),
		isa.Logic(mtj.NOT, []int{1}, 3+1), // NOT row1 -> row 4
	}
	path := filepath.Join(dir, "prog.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := isa.WriteImage(prog, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunContinuous(t *testing.T) {
	img := writeImage(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-rows", "16", "-cols", "8", "-dump", "0:0:4:0", img}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "instructions:  5 (0 restarts)") {
		t.Errorf("missing instruction count: %q", s)
	}
	if !strings.Contains(s, "terminates") {
		t.Errorf("missing termination report: %q", s)
	}
	// Rows 0..4 of column 0: 0, NAND=1, 0, 0, NOT(1)=0.
	if !strings.Contains(s, "tile 0 col 0 rows 0..4: 0 1 0 0 0") {
		t.Errorf("dump wrong: %q", s)
	}
}

func TestRunIntermittent(t *testing.T) {
	img := writeImage(t, t.TempDir())
	var out bytes.Buffer
	err := run([]string{"-rows", "16", "-cols", "8", "-power", "1e-6", "-cap", "2e-9", img}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "charging") {
		t.Errorf("no charging time reported: %q", out.String())
	}
}

func TestRunConfigs(t *testing.T) {
	img := writeImage(t, t.TempDir())
	for _, cfg := range []string{"modern-stt", "projected-stt", "she"} {
		var out bytes.Buffer
		if err := run([]string{"-config", cfg, "-rows", "16", "-cols", "8", img}, &out); err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Errorf("missing image accepted")
	}
	if err := run([]string{"-config", "frob", "x.img"}, &out); err == nil {
		t.Errorf("bad config accepted")
	}
	if err := run([]string{"nonexistent.img"}, &out); err == nil {
		t.Errorf("missing file accepted")
	}
	img := writeImage(t, t.TempDir())
	if err := run([]string{"-rows", "16", "-cols", "8", "-dump", "zig", img}, &out); err == nil {
		t.Errorf("bad dump spec accepted")
	}
	if err := run([]string{"-rows", "16", "-cols", "8", "-dump", "0:0:99:0", img}, &out); err == nil {
		t.Errorf("out-of-range dump accepted")
	}
}
