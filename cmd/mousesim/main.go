// mousesim runs a MOUSE program image on the bit-accurate functional
// simulator, optionally under a harvested power supply with unexpected
// outages, and reports the EH-model accounting.
//
// Usage:
//
//	mousesim [flags] prog.img
//
//	-config modern-stt|projected-stt|she   technology (default modern-stt)
//	-tiles N -rows N -cols N               machine geometry
//	-power W                               harvested power (0 = continuous)
//	-cap F                                 capacitor override (farads)
//	-dump tile:row0:row1:col               print a bit range after the run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mouse/internal/array"
	"mouse/internal/controller"
	"mouse/internal/isa"
	"mouse/internal/mtj"
	"mouse/internal/power"
	"mouse/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mousesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mousesim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	config := fs.String("config", "modern-stt", "technology: modern-stt, projected-stt, she")
	tiles := fs.Int("tiles", 1, "number of tiles")
	rows := fs.Int("rows", 1024, "rows per tile")
	cols := fs.Int("cols", 16, "columns per tile")
	watts := fs.Float64("power", 0, "harvested power in watts (0 = continuous)")
	capF := fs.Float64("cap", 0, "capacitor override in farads (0 = technology default)")
	dump := fs.String("dump", "", "print bits after the run: tile:rowFirst:rowLast:col")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mousesim [flags] prog.img")
	}

	var cfg *mtj.Config
	switch *config {
	case "modern-stt":
		cfg = mtj.ModernSTT()
	case "projected-stt":
		cfg = mtj.ProjectedSTT()
	case "she":
		cfg = mtj.ProjectedSHE()
	default:
		return fmt.Errorf("unknown config %q", *config)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := isa.ReadImage(f)
	f.Close()
	if err != nil {
		return err
	}

	m := array.NewMachine(cfg, *tiles, *rows, *cols)
	c := controller.New(controller.ProgramStore(prog), m)
	runner := sim.NewMachineRunner(c)

	// Static forward-progress check before deployment (Section I's
	// non-termination hazard).
	rep := sim.CheckTermination(sim.StreamFromProgram(prog, *tiles), runner.Model)
	fmt.Fprintln(stdout, rep)
	if !rep.OK && *watts > 0 {
		return fmt.Errorf("program cannot make forward progress on this energy buffer")
	}

	var h *power.Harvester
	if *watts > 0 {
		capacitance := cfg.CapC
		if *capF > 0 {
			capacitance = *capF
		}
		h = power.NewHarvester(power.Constant{W: *watts}, capacitance, cfg.CapVMin, cfg.CapVMax)
	}
	res, err := runner.Run(h)
	if err != nil {
		return err
	}

	b := res.Breakdown
	fmt.Fprintf(stdout, "config:        %s (%.1f MHz)\n", cfg.Name, cfg.Freq/1e6)
	fmt.Fprintf(stdout, "instructions:  %d (%d restarts)\n", b.Instructions, b.Restarts)
	fmt.Fprintf(stdout, "latency:       %.6g s (on %.6g s, charging %.6g s)\n", b.TotalLatency(), b.OnLatency, b.OffLatency)
	fmt.Fprintf(stdout, "energy:        %.6g J\n", b.TotalEnergy())
	fmt.Fprintf(stdout, "  compute      %.6g J\n", b.ComputeEnergy)
	fmt.Fprintf(stdout, "  backup       %.6g J (%.3f%%)\n", b.BackupEnergy, 100*b.Share(b.BackupEnergy))
	fmt.Fprintf(stdout, "  dead         %.6g J (%.3f%%)\n", b.DeadEnergy, 100*b.Share(b.DeadEnergy))
	fmt.Fprintf(stdout, "  restore      %.6g J (%.3f%%)\n", b.RestoreEnergy, 100*b.Share(b.RestoreEnergy))

	if *dump != "" {
		var tile, r0, r1, col int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*dump, ":", " "), "%d %d %d %d", &tile, &r0, &r1, &col); err != nil {
			return fmt.Errorf("bad -dump spec %q: %v", *dump, err)
		}
		bits, err := m.ReadBits(tile, col, r0, 1, r1-r0+1)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tile %d col %d rows %d..%d:", tile, col, r0, r1)
		for _, bit := range bits {
			fmt.Fprintf(stdout, " %d", bit)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
