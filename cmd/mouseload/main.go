// mouseload drives a running moused's POST /v1/infer endpoint with the
// open-loop load generator from internal/fleet and reports request
// latency percentiles — the client half of the fleet serving
// experiment, pointed at a real server instead of an in-process fleet.
//
// Usage:
//
//	mouseload -addr HOST:PORT [-workload NAME] [-n N] [-batch N]
//	          [-interval DUR] [-verify] [-json]
//
// -addr names the moused server (the address it printed on stdout or
// wrote to its -addr-file). -workload picks the served hot workload
// (default svm-adult), -n the request count, -batch the samples per
// request, and -interval the open-loop arrival spacing: requests launch
// on schedule no matter how slowly earlier ones complete, so harvested
// stalls show up as latency instead of silently thinning the load.
//
// -verify recomputes every expected label with the offline batch
// classifier and counts disagreements: a nonzero mismatch count means
// the server's predictions drifted from the simulator's, and mouseload
// exits nonzero. -json replaces the summary with the raw LoadReport.
//
// HTTP 429 responses count as Rejected (backpressure working as
// designed), not as errors; any other non-200 counts as an error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mouse/internal/fleet"
	"mouse/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "moused address (HOST:PORT), required")
	wlName := flag.String("workload", "svm-adult", "hot workload to request")
	requests := flag.Int("n", 32, "requests to send")
	batch := flag.Int("batch", 8, "samples per request")
	interval := flag.Duration("interval", 0, "open-loop arrival spacing")
	verify := flag.Bool("verify", false, "check predictions against the offline batch classifier")
	asJSON := flag.Bool("json", false, "emit the raw load report as JSON")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "mouseload: -addr is required")
		os.Exit(2)
	}
	rep, err := run(*addr, *wlName, *requests, *batch, *interval, *verify)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mouseload:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "mouseload:", err)
			os.Exit(1)
		}
	} else {
		printReport(os.Stdout, *wlName, rep)
	}
	if rep.Mismatches > 0 || rep.Errors > 0 {
		os.Exit(1)
	}
}

// run assembles the sample pool (and, with verify, the golden labels),
// then drives the server with the open-loop generator.
func run(addr, wlName string, requests, batch int, interval time.Duration, verify bool) (fleet.LoadReport, error) {
	hb, err := workload.HotBatchByName(wlName)
	if err != nil {
		return fleet.LoadReport{}, err
	}
	samples := hb.Samples(requests * batch)
	var expected []int
	if verify {
		offline, err := hb.NewBatched()
		if err != nil {
			return fleet.LoadReport{}, err
		}
		for i := 0; i < requests; i++ {
			preds, err := offline(samples[i*batch : (i+1)*batch])
			if err != nil {
				return fleet.LoadReport{}, err
			}
			expected = append(expected, preds...)
		}
	}
	send := newHTTPSender(&http.Client{Timeout: 60 * time.Second}, "http://"+addr, wlName)
	return fleet.RunLoad(fleet.LoadConfig{
		Requests:  requests,
		BatchSize: batch,
		Interval:  interval,
		Expected:  expected,
	}, samples, send)
}

// inferRequest / inferResponse mirror moused's /v1/infer wire format.
type inferRequest struct {
	Workload string  `json:"workload"`
	Samples  [][]int `json:"samples"`
}

type inferResponse struct {
	Workload    string `json:"workload"`
	Predictions []int  `json:"predictions"`
}

// newHTTPSender builds the SendFunc for one workload against one
// server. A 429 maps to fleet.OverloadedError (with the server's
// Retry-After hint) so RunLoad counts it as backpressure.
func newHTTPSender(client *http.Client, base, wlName string) fleet.SendFunc {
	url := base + "/v1/infer"
	return func(chunk [][]int) ([]int, error) {
		body, err := json.Marshal(inferRequest{Workload: wlName, Samples: chunk})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var out inferResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return nil, fmt.Errorf("decoding response: %w", err)
			}
			return out.Predictions, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			retry := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
			return nil, &fleet.OverloadedError{Workload: wlName, RetryAfter: retry}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
	}
}

// printReport renders the human summary.
func printReport(w io.Writer, wlName string, rep fleet.LoadReport) {
	fmt.Fprintf(w, "mouseload: %s — %d requests: %d ok, %d rejected, %d errors, %d mismatches\n",
		wlName, rep.Requests, rep.OK, rep.Rejected, rep.Errors, rep.Mismatches)
	if rep.OK > 0 {
		fmt.Fprintf(w, "latency: p50 %v  p99 %v  mean %v\n", rep.P50, rep.P99, rep.Mean)
	}
}
