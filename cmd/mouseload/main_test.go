package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mouse/internal/fleet"
)

// fakeInfer scripts /v1/infer by sample content: a first feature of 429
// or 500 triggers that status, anything else echoes zeros.
func fakeInfer(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch req.Samples[0][0] {
	case 429:
		w.Header().Set("Retry-After", "2")
		http.Error(w, "full", http.StatusTooManyRequests)
		return
	case 500:
		http.Error(w, "boom", http.StatusInternalServerError)
		return
	}
	preds := make([]int, len(req.Samples))
	json.NewEncoder(w).Encode(inferResponse{Workload: req.Workload, Predictions: preds})
}

func TestHTTPSenderMapsStatuses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(fakeInfer))
	defer ts.Close()
	send := newHTTPSender(ts.Client(), ts.URL, "svm-adult")

	preds, err := send([][]int{{1}, {2}})
	if err != nil || len(preds) != 2 {
		t.Fatalf("ok path: preds %v, err %v", preds, err)
	}

	_, err = send([][]int{{429}})
	if !errors.Is(err, fleet.ErrOverloaded) {
		t.Fatalf("429 mapped to %v, want ErrOverloaded", err)
	}
	var oe *fleet.OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 2*time.Second {
		t.Fatalf("429 lost the Retry-After hint: %v", err)
	}

	if _, err = send([][]int{{500}}); err == nil || errors.Is(err, fleet.ErrOverloaded) {
		t.Fatalf("500 mapped to %v, want a plain error", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("500 error dropped the server message: %v", err)
	}
}

// TestRunAgainstFakeServer wires run() end to end against the scripted
// handler (verification off — the fake returns zeros, not real labels).
func TestRunAgainstFakeServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(fakeInfer))
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")
	rep, err := run(addr, "svm-adult", 4, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.OK != 4 || rep.Rejected != 0 || rep.Errors != 0 {
		t.Errorf("report: %+v, want 4 clean OKs", rep)
	}
	if rep.P99 < rep.P50 || rep.Mean <= 0 {
		t.Errorf("latency aggregates inconsistent: %+v", rep)
	}

	if _, err := run(addr, "frobnicate", 1, 1, 0, false); err == nil {
		t.Error("unknown workload accepted")
	}
}
