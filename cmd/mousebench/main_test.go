package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments run end to end; the heavyweight sweeps are
	// covered by the bench package's own tests.
	cases := map[string]string{
		"table1":      "Table I",
		"table2":      "Table II",
		"table3":      "Table III",
		"table4":      "SONIC",
		"robustness":  "array-level limits",
		"parallelism": "cols",
		"crossover":   "crossover",
		"fft":         "CRAFFT",
	}
	for exp, want := range cases {
		var out bytes.Buffer
		if err := runExperiments(exp, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s output missing %q", exp, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := runExperiments("frobnicate", &out); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}
