package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mouse/internal/bench"
)

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments run end to end; the heavyweight sweeps are
	// covered by the bench package's own tests.
	cases := map[string]string{
		"table1":      "Table I",
		"table2":      "Table II",
		"table3":      "Table III",
		"table4":      "SONIC",
		"robustness":  "array-level limits",
		"parallelism": "cols",
		"crossover":   "crossover",
		"fft":         "CRAFFT",
	}
	for exp, want := range cases {
		var out bytes.Buffer
		if err := runExperiments(exp, &out, nil, 1, false, false); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s output missing %q", exp, want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := runExperiments("frobnicate", &out, nil, 1, false, false); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
	if err := runExperiments("frobnicate", &out, nil, 1, true, false); err == nil {
		t.Fatalf("unknown experiment accepted in JSON mode")
	}
}

// TestOutputIsExactlyTheSelectedExperiment pins the tightened output
// framing: a single experiment produces its table and nothing else — no
// leading or trailing blank line — and "all" separates experiments by
// exactly one blank line.
func TestOutputIsExactlyTheSelectedExperiment(t *testing.T) {
	var single bytes.Buffer
	if err := runExperiments("table2", &single, nil, 1, false, false); err != nil {
		t.Fatal(err)
	}
	out := single.String()
	if strings.HasPrefix(out, "\n") || strings.HasSuffix(out, "\n\n") {
		t.Errorf("table2 output has blank-line padding: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("table2 output does not end in a newline: %q", out)
	}

	// Stitching single-experiment outputs with one blank line between
	// them must reproduce a multi-experiment run exactly.
	var stitched bytes.Buffer
	for i, exp := range []string{"table1", "table2", "table3"} {
		if i > 0 {
			stitched.WriteString("\n")
		}
		if err := runExperiments(exp, &stitched, nil, 1, false, false); err != nil {
			t.Fatal(err)
		}
	}
	if strings.Contains(stitched.String(), "\n\n\n") {
		t.Errorf("experiments separated by more than one blank line")
	}
}

// TestDeterministicTables runs the full experiment suite twice, serial
// and parallel, and requires byte-identical table output: goroutine
// scheduling in the sweep engine must not leak into results.
func TestDeterministicTables(t *testing.T) {
	render := func(workers int) string {
		var out bytes.Buffer
		if err := runExperiments("all", &out, nil, workers, false, false); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render(1)
	again := render(1)
	parallel := render(8)
	if serial != again {
		t.Errorf("two serial runs differ")
	}
	if serial != parallel {
		t.Errorf("-parallel 8 output differs from -parallel 1")
	}
	if !strings.Contains(serial, "Fig. 12") || !strings.Contains(serial, "crossover") {
		t.Errorf("full run missing experiments")
	}
}

// TestDeterministicJSONReports builds the full JSON report serially and
// in parallel and requires the normalized reports deep-equal, and their
// encodings byte-identical.
func TestDeterministicJSONReports(t *testing.T) {
	build := func(workers int) (*bench.Report, []byte) {
		rep, err := bench.BuildReport("all", workers)
		if err != nil {
			t.Fatal(err)
		}
		rep.Normalize()
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return rep, buf.Bytes()
	}
	serialRep, serialJSON := build(1)
	parallelRep, parallelJSON := build(8)
	if !reflect.DeepEqual(serialRep, parallelRep) {
		t.Errorf("normalized reports differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("JSON encodings differ between -parallel 1 and -parallel 8")
	}
}

// TestProgressLeavesStdoutIdentical pins the -progress contract: the
// live feed goes only to its own writer, and stdout bytes are identical
// with progress on or off, in both table and JSON mode.
func TestProgressLeavesStdoutIdentical(t *testing.T) {
	for _, asJSON := range []bool{false, true} {
		var plain, withProg, feed bytes.Buffer
		if err := runExperiments("table2", &plain, nil, 1, asJSON, false); err != nil {
			t.Fatal(err)
		}
		if err := runExperiments("table2", &withProg, &feed, 1, asJSON, false); err != nil {
			t.Fatal(err)
		}
		if asJSON {
			// Report wall-clock stamps differ run to run; compare normalized.
			norm := func(b []byte) *bench.Report {
				var rep bench.Report
				if err := json.Unmarshal(b, &rep); err != nil {
					t.Fatal(err)
				}
				rep.Normalize()
				return &rep
			}
			if !reflect.DeepEqual(norm(plain.Bytes()), norm(withProg.Bytes())) {
				t.Errorf("json=%v: -progress changed the normalized report", asJSON)
			}
		} else if !bytes.Equal(plain.Bytes(), withProg.Bytes()) {
			t.Errorf("json=%v: -progress changed stdout bytes", asJSON)
		}
		got := feed.String()
		if !strings.Contains(got, "mousebench: [1/1] table2 ...") ||
			!strings.Contains(got, "mousebench: [1/1] table2 done") {
			t.Errorf("json=%v: progress feed missing lifecycle lines:\n%s", asJSON, got)
		}
	}
}

// TestReportCarriesRunMeta checks the optional meta section: stamped by
// report builds, stripped by Normalize.
func TestReportCarriesRunMeta(t *testing.T) {
	rep, err := bench.BuildReport("table2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta == nil || rep.Meta.GoVersion == "" || rep.Meta.GOMAXPROCS < 1 {
		t.Fatalf("meta not stamped: %+v", rep.Meta)
	}
	rep.Normalize()
	if rep.Meta != nil {
		t.Errorf("Normalize left the meta section")
	}
}

// TestJSONModeEmitsValidReport exercises the -json path end to end.
func TestJSONModeEmitsValidReport(t *testing.T) {
	var out bytes.Buffer
	if err := runExperiments("table3", &out, nil, 2, true, false); err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != bench.Schema || rep.Tool != "mousebench" {
		t.Errorf("report header %q/%q", rep.Schema, rep.Tool)
	}
	if rep.Parallelism != 2 {
		t.Errorf("parallelism %d, want 2", rep.Parallelism)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table3" {
		t.Fatalf("experiments %+v", rep.Experiments)
	}
	rows, ok := rep.Experiments[0].Rows.([]any)
	if !ok || len(rows) != 6 {
		t.Fatalf("table3 rows: %#v", rep.Experiments[0].Rows)
	}
}
