// mousebench regenerates the tables and figures of the MOUSE paper's
// evaluation (Sections VIII–IX).
//
// Usage:
//
//	mousebench [-experiment all|table1|table2|table3|table4|fig9|fig10|fig11|fig12|
//	            crossover|robustness|checkpoint|parallelism|fft]
//	           [-parallel N] [-json] [-out FILE]
//
// Each experiment prints the same rows or series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. Grid-shaped
// experiments run on a worker pool bounded by -parallel (default: one
// worker per CPU); results are identical at any parallelism. -json
// replaces the tables with a machine-readable report (schema documented
// in EXPERIMENTS.md); -out writes the output to a file instead of
// stdout, e.g. `mousebench -json -out BENCH.json` to record a
// perf-trajectory snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mouse/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	parallel := flag.Int("parallel", 0, "sweep worker bound; 0 means one per CPU")
	asJSON := flag.Bool("json", false, "emit a machine-readable report instead of tables")
	outPath := flag.String("out", "", "write output to this file instead of stdout")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mousebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := runExperiments(*experiment, out, *parallel, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "mousebench:", err)
		os.Exit(1)
	}
}

// runExperiments executes the selected experiment (or all of them) with
// the given sweep-worker bound, writing tables — or, with asJSON, the
// structured report — to out.
func runExperiments(experiment string, out io.Writer, workers int, asJSON bool) error {
	if asJSON {
		rep, err := bench.BuildReport(experiment, workers)
		if err != nil {
			return err
		}
		return rep.WriteJSON(out)
	}
	return bench.RunPrinted(out, experiment, workers)
}
