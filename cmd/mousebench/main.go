// mousebench regenerates the tables and figures of the MOUSE paper's
// evaluation (Sections VIII–IX).
//
// Usage:
//
//	mousebench [-experiment all|table1|table2|table3|table4|fig9|fig10|fig11|fig12|
//	            crossover|robustness|checkpoint|parallelism|fft]
//
// Each experiment prints the same rows or series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mouse/internal/bench"
	"mouse/internal/mtj"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	flag.Parse()
	if err := runExperiments(*experiment, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mousebench:", err)
		os.Exit(1)
	}
}

// runExperiments executes the selected experiment (or all of them),
// writing the tables to out.
func runExperiments(experiment string, out io.Writer) error {
	var firstErr error
	matched := false
	run := func(name string, f func() error) {
		if experiment != "all" && experiment != name {
			return
		}
		matched = true
		if err := f(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(out)
	}
	run("table1", func() error { bench.PrintTableI(out, mtj.ModernSTT()); return nil })
	run("table2", func() error { bench.PrintTableII(out); return nil })
	run("table3", func() error { bench.PrintTableIII(out); return nil })
	run("table4", func() error { bench.PrintTableIV(out); return nil })
	run("fig9", func() error {
		for _, cfg := range mtj.Configs() {
			if err := bench.PrintFig9(out, cfg); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	})
	run("fig10", func() error { return bench.PrintBreakdown(out, mtj.ModernSTT(), 60e-6, "Fig. 10") })
	run("fig11", func() error { return bench.PrintBreakdown(out, mtj.ProjectedSTT(), 60e-6, "Fig. 11") })
	run("fig12", func() error { return bench.PrintBreakdown(out, mtj.ProjectedSHE(), 60e-6, "Fig. 12") })
	run("fft", func() error { return bench.PrintFFT(out) })
	run("robustness", func() error { bench.PrintRobustness(out); return nil })
	run("checkpoint", func() error { return bench.PrintCheckpointSweep(out, mtj.ModernSTT(), "SVM ADULT") })
	run("parallelism", func() error { bench.PrintParallelism(out); return nil })
	run("crossover", func() error {
		p, err := bench.CrossoverPowerW(mtj.ModernSTT())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "FP-BNN vs SVM MNIST (Bin) latency crossover: %.3g W\n", p)
		fmt.Fprintln(out, "below this power the energy-hungrier FP-BNN is slower; above it its")
		fmt.Fprintln(out, "higher exploited parallelism wins (Section IX)")
		return nil
	})
	if !matched {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return firstErr
}
