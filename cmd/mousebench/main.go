// mousebench regenerates the tables and figures of the MOUSE paper's
// evaluation (Sections VIII–IX).
//
// Usage:
//
//	mousebench [-experiment all|table1|table2|table3|table4|fig9|fig10|fig11|fig12|
//	            crossover|robustness|checkpoint|parallelism|fft|batch|segment|fleet]
//	           [-batch N] [-fleet] [-parallel N] [-json] [-telemetry] [-progress]
//	           [-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Each experiment prints the same rows or series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. Grid-shaped
// experiments run on a worker pool bounded by -parallel (default: one
// worker per CPU); results are identical at any parallelism. -json
// replaces the tables with a machine-readable report (schema documented
// in EXPERIMENTS.md); -out writes the output to a file instead of
// stdout, e.g. `mousebench -json -out BENCH.json` to record a
// perf-trajectory snapshot.
//
// -telemetry attaches a shared probe.Stats observer to every simulation
// the selected experiments run: with -json the report gains the
// optional "telemetry" section (replays, outage durations, energy by
// phase); in table mode a summary block is appended after the tables.
//
// -progress reports each experiment's start and finish (with row count
// and wall time) live on stderr while the run executes, leaving stdout
// bytes untouched — useful when `-experiment all` takes a while and the
// tables only appear at the end.
//
// -batch N runs only the batch-inference throughput experiment with N
// bit-slice lanes (1–64): every hot workload is replayed through the
// bit-sliced batch engine and timed against the sequential controller
// path, reporting host ns/inference for both. Without the flag the
// registry's batch experiment runs at the full 64 lanes.
//
// -fleet runs only the fleet serving experiment with its host-latency
// percentiles included: every hot workload is served through an
// internal/fleet inference fleet under continuous and harvested power,
// reporting p50/p99/mean ms per request. The registry's fleet
// experiment prints only the deterministic outcome counters.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (CPU sampled across the run; heap captured at the end),
// so perf PRs can attach `go tool pprof` evidence for the paths they
// touch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"mouse/internal/bench"
	"mouse/internal/probe"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	batchLanes := flag.Int("batch", 0, "run only the batch throughput experiment with this many bit-slice lanes (1-64)")
	fleetOnly := flag.Bool("fleet", false, "run only the fleet serving experiment, latency percentiles included")
	parallel := flag.Int("parallel", 0, "sweep worker bound; 0 means one per CPU")
	asJSON := flag.Bool("json", false, "emit a machine-readable report instead of tables")
	telemetry := flag.Bool("telemetry", false, "collect run telemetry (replays, outages, energy by phase)")
	progress := flag.Bool("progress", false, "report per-experiment start/finish lines live on stderr")
	outPath := flag.String("out", "", "write output to this file instead of stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mousebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mousebench:", err)
		os.Exit(1)
	}
	progressTo := io.Writer(nil)
	if *progress {
		progressTo = os.Stderr
	}
	var runErr error
	if *batchLanes != 0 {
		runErr = bench.RunBatch(out, *batchLanes, *parallel, *asJSON)
	} else if *fleetOnly {
		runErr = bench.RunFleet(out, *parallel, *asJSON)
	} else {
		runErr = runExperiments(*experiment, out, progressTo, *parallel, *asJSON, *telemetry)
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, "mousebench:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mousebench:", runErr)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling (when requested) and returns a
// stop function that finishes the CPU profile and snapshots the heap.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// runExperiments executes the selected experiment (or all of them) with
// the given sweep-worker bound, writing tables — or, with asJSON, the
// structured report — to out. telemetry attaches a shared probe.Stats
// to every simulation and reports its totals. A non-nil progressTo
// receives one live line per experiment start/finish (the -progress
// stderr feed); it never receives table or report bytes.
func runExperiments(experiment string, out, progressTo io.Writer, workers int, asJSON, telemetry bool) error {
	var prog bench.Progress
	if progressTo != nil {
		prog = bench.NewProgressWriter(progressTo)
	}
	if asJSON {
		var rep *bench.Report
		var err error
		if telemetry {
			rep, err = bench.BuildTelemetryReportProgress(experiment, workers, prog)
		} else {
			rep, err = bench.BuildReportProgress(experiment, workers, prog)
		}
		if err != nil {
			return err
		}
		return rep.WriteJSON(out)
	}
	if telemetry {
		stats := &probe.Stats{}
		if err := bench.RunPrintedProgress(out, experiment, workers, prog, stats); err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Telemetry — totals across every simulation above")
		return stats.Section().WriteSummary(out)
	}
	return bench.RunPrintedProgress(out, experiment, workers, prog)
}
