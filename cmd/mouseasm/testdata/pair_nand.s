# Demonstration program: NAND the bits of rows 0 and 2 in four columns,
# then copy the result row to a second tile through the memory buffer.
ACT * R 0 4 1     ; activate columns 0..3 everywhere
PRE0 1            ; NAND preset
NAND2 0 2 1
PRE0 4            ; NOT of the NAND = AND (odd input, even output)
NOT 1 4
RD 0 4            ; move the AND row to tile 1, shifted one column right
WR 1 5 1
