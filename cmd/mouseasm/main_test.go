package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "prog.img")

	var out bytes.Buffer
	if err := run([]string{"-o", img, "testdata/pair_nand.s"}, &out); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if !strings.Contains(out.String(), "wrote 7 instructions") {
		t.Errorf("assemble output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"-d", img}, &out); err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("disassembled %d lines: %q", len(lines), out.String())
	}
	if lines[0] != "ACT * R 0 4 1" || lines[6] != "WR 1 5 1" {
		t.Errorf("disassembly wrong: %v", lines)
	}

	out.Reset()
	if err := run([]string{"-stats", img}, &out); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "7 instructions: 2 logic, 2 preset, 1 read, 1 write, 1 activate") {
		t.Errorf("stats output: %q", out.String())
	}
	if !strings.Contains(out.String(), "replay-safe regions") || !strings.Contains(out.String(), "hottest cells") {
		t.Errorf("stats missing analyses: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Errorf("missing file accepted")
	}
	if err := run([]string{"testdata/pair_nand.s"}, &out); err == nil {
		t.Errorf("assemble without -o accepted")
	}
	if err := run([]string{"-d", "testdata/does_not_exist.img"}, &out); err == nil {
		t.Errorf("missing image accepted")
	}
	// A source file with a syntax error.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(bad, []byte("FROB 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", filepath.Join(dir, "x.img"), bad}, &out); err == nil {
		t.Errorf("bad assembly accepted")
	}
}

// Syntax errors identify the offending statement as file:line.
func TestParseErrorReportsLine(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	src := "# comment\nACT * R 0 4 1\n\nFROB 1 2\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-o", filepath.Join(dir, "x.img"), bad}, &out)
	if err == nil || !strings.Contains(err.Error(), bad+":4:") {
		t.Errorf("want error naming %s:4:, got %v", bad, err)
	}
}

func TestVetFlag(t *testing.T) {
	dir := t.TempDir()

	// A program with a lint error: the gate output row is never preset.
	bad := filepath.Join(dir, "bad.s")
	src := "ACT * R 0 4 1\nNAND2 0 2 1\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	img := filepath.Join(dir, "bad.img")
	var out bytes.Buffer
	err := run([]string{"-vet", "-o", img, bad}, &out)
	if err == nil || !strings.Contains(err.Error(), "image not written") {
		t.Fatalf("vet should refuse the image, got err=%v", err)
	}
	if !strings.Contains(out.String(), bad+":2: error:") {
		t.Errorf("vet diagnostics should be line-mapped, got:\n%s", out.String())
	}
	if _, statErr := os.Stat(img); !os.IsNotExist(statErr) {
		t.Errorf("image %s was written despite vet errors", img)
	}

	// The clean demonstration program still assembles under -vet.
	out.Reset()
	good := filepath.Join(dir, "good.img")
	if err := run([]string{"-vet", "-o", good, "testdata/pair_nand.s"}, &out); err != nil {
		t.Fatalf("vet rejected a clean program: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "wrote 7 instructions") {
		t.Errorf("assemble output: %q", out.String())
	}
}
