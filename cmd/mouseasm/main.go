// mouseasm assembles MOUSE assembly into binary program images for the
// instruction tiles, and disassembles images back to text.
//
// Usage:
//
//	mouseasm -o prog.img prog.s      assemble
//	mouseasm -vet -o prog.img prog.s assemble, refusing on lint errors
//	mouseasm -d prog.img             disassemble to stdout
//	mouseasm -stats prog.img         print instruction statistics
//
// Assembly syntax (one instruction per line; '#' and ';' comments):
//
//	RD <tile> <row>              read a row into the memory buffer
//	WR <tile> <row> [rot]        write the memory buffer to a row,
//	                             optionally rotated by rot columns
//	PRE0 <row> | PRE1 <row>      preset a row in the active columns
//	ACT (*|T<tile>) C <col>...   activate up to 5 listed columns
//	ACT (*|T<tile>) R <start> <count> [stride]
//	<GATE> <in>... <out>         e.g. NAND2 0 2 1, MAJ3 0 2 4 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mouse/internal/isa"
	"mouse/internal/lint"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mouseasm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mouseasm", flag.ContinueOnError)
	fs.SetOutput(stdout)
	out := fs.String("o", "", "output image path (assemble mode)")
	disasm := fs.Bool("d", false, "disassemble an image to stdout")
	stats := fs.Bool("stats", false, "print instruction statistics for an image")
	vet := fs.Bool("vet", false, "lint the program; refuse to emit an image with error-severity findings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mouseasm [-o out.img | -d | -stats] <file>")
	}
	path := fs.Arg(0)

	if *disasm || *stats {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err := isa.ReadImage(f)
		if err != nil {
			return err
		}
		if *stats {
			c := prog.Count()
			fmt.Fprintf(stdout, "%d instructions: %d logic, %d preset, %d read, %d write, %d activate\n",
				c.Total(), c.Logic, c.Preset, c.Read, c.Write, c.Act)
			bounds := isa.SafeCheckpointBoundaries(prog)
			fmt.Fprintf(stdout, "replay-safe regions: %d (MOUSE checkpoints per instruction regardless)\n", len(bounds))
			if desc, n := isa.Wear(prog).Hottest(); n > 0 {
				fmt.Fprintf(stdout, "hottest cells: %s, %d writes/pass → %.2g passes at 1e15 write endurance\n",
					desc, n, isa.Wear(prog).LifetimeInferences(1e15))
			}
			return nil
		}
		return isa.Format(prog, stdout)
	}

	src, err := os.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()
	prog, lines, err := isa.ParseLines(src)
	if err != nil {
		var pe *isa.ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%s:%d: %v", path, pe.Line, pe.Err)
		}
		return err
	}
	if *vet {
		rep := lint.Lint(prog, lint.Options{LineMap: lines})
		for _, d := range rep.Diagnostics {
			if d.Severity != lint.Info {
				fmt.Fprintf(stdout, "%s:%d: %s: %s [%s]\n", path, d.Line, d.Severity, d.Message, d.Rule)
			}
		}
		if rep.HasErrors() {
			return fmt.Errorf("vet: %d error(s); image not written", rep.Count(lint.Error))
		}
	}
	if *out == "" {
		return fmt.Errorf("assemble mode needs -o")
	}
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := isa.WriteImage(prog, dst); err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d instructions to %s\n", len(prog), *out)
	return nil
}
