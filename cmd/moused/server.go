package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"mouse/internal/bench"
	"mouse/internal/metrics"
	"mouse/internal/probe"
)

// maxRecentRuns bounds the /runs history ring.
const maxRecentRuns = 64

// testHookAfterExperiment, when non-nil, runs after each job finishes
// (before any -interval pause). Tests use it to scrape mid-stream at a
// deterministic point instead of polling on wall clock.
var testHookAfterExperiment func(seq int)

// server is moused's state: one probe.Stats shard per simulated device
// fed by the job stream, a metrics registry that aggregates them at
// scrape time, and a bounded history of recent runs for /runs.
//
// The shards are the same lock-free probe.Stats the simulators already
// feed, so serving /metrics adds nothing to simulation hot paths: all
// merging happens per scrape via Stats.Merge into a fresh accumulator.
type server struct {
	reg     *metrics.Registry
	devices []*probe.Stats
	workers int

	started    *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	active     *metrics.Gauge
	runSeconds *metrics.Histogram

	mu     sync.Mutex
	runs   []runStatus // most recent first, capped at maxRecentRuns
	nextID int
}

// runStatus is one entry of the /runs JSON feed.
type runStatus struct {
	Seq         int     `json:"seq"`
	Name        string  `json:"name"`
	Device      int     `json:"device"`
	State       string  `json:"state"` // running, done, failed
	Rows        int     `json:"rows,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// runsPage is the /runs response document.
type runsPage struct {
	Started   float64     `json:"started"`
	Completed float64     `json:"completed"`
	Failed    float64     `json:"failed"`
	Active    float64     `json:"active"`
	Runs      []runStatus `json:"runs"`
}

func newServer(devices, workers int) *server {
	if devices < 1 {
		devices = 1
	}
	s := &server{
		reg:     metrics.New(),
		devices: make([]*probe.Stats, devices),
		workers: workers,
	}
	for i := range s.devices {
		s.devices[i] = &probe.Stats{}
	}

	s.started = s.reg.NewCounter("moused_runs_started_total", "Experiment runs the job stream has started.")
	s.completed = s.reg.NewCounter("moused_runs_completed_total", "Experiment runs that finished successfully.")
	s.failed = s.reg.NewCounter("moused_runs_failed_total", "Experiment runs that returned an error.")
	s.active = s.reg.NewGauge("moused_runs_active", "Experiment runs currently executing.")
	s.runSeconds = s.reg.NewHistogram("moused_run_seconds", "Host wall-clock duration of completed experiment runs.",
		metrics.LogBuckets(1e-3, 8))
	s.reg.Collect("moused_devices", "gauge", "Simulated devices this instance aggregates.",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(len(s.devices))}} })

	// The fleet view: every probe family under mouse_probe_* reads one
	// merged snapshot of all device shards, taken once per scrape.
	metrics.ExportStats(s.reg, "mouse_probe", s.fleetSection)

	// Per-device families for the gauges that only make sense unmerged.
	s.reg.Collect("moused_device_voltage_volts", "gauge",
		"Capacitor voltage extremes per device (absent until a device reports voltage samples).",
		func() []metrics.Sample {
			var out []metrics.Sample
			for i, d := range s.devices {
				sec := d.Section()
				if sec.VoltageSamples == 0 {
					continue
				}
				dev := strconv.Itoa(i)
				out = append(out,
					metrics.Sample{Labels: []metrics.Label{{Name: "device", Value: dev}, {Name: "bound", Value: "max"}}, Value: sec.VoltageMax},
					metrics.Sample{Labels: []metrics.Label{{Name: "device", Value: dev}, {Name: "bound", Value: "min"}}, Value: sec.VoltageMin})
			}
			return out
		})
	s.reg.Collect("moused_device_instructions_total", "counter",
		"Committed instruction cycles per device.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, len(s.devices))
			for i, d := range s.devices {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Name: "device", Value: strconv.Itoa(i)}},
					Value:  float64(d.Section().Instructions)})
			}
			return out
		})
	return s
}

// fleetSection merges every device shard into a fresh accumulator and
// snapshots it — the same Section a post-run report would serialize, so
// a scrape and a report read identical numbers by construction.
func (s *server) fleetSection() *probe.Section {
	agg := &probe.Stats{}
	for _, d := range s.devices {
		agg.Merge(d)
	}
	return agg.Section()
}

// handler serves moused's HTTP surface: Prometheus exposition on
// /metrics, liveness on /healthz, the recent-run JSON feed on /runs,
// and the standard pprof handlers under /debug/pprof/.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runs", s.serveRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) serveRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	page := runsPage{
		Started:   s.started.Value(),
		Completed: s.completed.Value(),
		Failed:    s.failed.Value(),
		Active:    s.active.Value(),
		Runs:      append([]runStatus{}, s.runs...),
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page)
}

// record inserts or updates the run history entry for seq.
func (s *server) record(st runStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.runs {
		if s.runs[i].Seq == st.Seq {
			s.runs[i] = st
			return
		}
	}
	s.runs = append([]runStatus{st}, s.runs...)
	if len(s.runs) > maxRecentRuns {
		s.runs = s.runs[:maxRecentRuns]
	}
}

// runOne executes one experiment against one device shard, updating the
// run metrics and the /runs history around the call.
func (s *server) runOne(name string, device, seq int) {
	s.started.Inc()
	s.active.Add(1)
	s.record(runStatus{Seq: seq, Name: name, Device: device, State: "running"})
	start := time.Now()
	rep, err := bench.BuildReport(name, s.workers, s.devices[device])
	wall := time.Since(start)
	s.active.Add(-1)
	s.runSeconds.Observe(wall.Seconds())
	st := runStatus{Seq: seq, Name: name, Device: device, WallSeconds: wall.Seconds()}
	if err != nil {
		s.failed.Inc()
		st.State = "failed"
		st.Error = err.Error()
	} else {
		s.completed.Inc()
		st.State = "done"
		st.Rows = bench.RowCount(rep.Experiments[0].Rows)
	}
	s.record(st)
}

// runStream executes the experiment list round-robin across devices:
// job seq runs experiment seq mod len(experiments) on device seq mod
// len(devices). repeat bounds the passes over the list (0 = run until
// ctx is cancelled); interval inserts a pause between jobs.
func (s *server) runStream(ctx context.Context, experiments []string, repeat int, interval time.Duration) {
	seq := 0
	for pass := 0; repeat == 0 || pass < repeat; pass++ {
		for _, name := range experiments {
			if ctx.Err() != nil {
				return
			}
			s.runOne(name, seq%len(s.devices), seq)
			seq++
			if testHookAfterExperiment != nil {
				testHookAfterExperiment(seq)
			}
			if interval > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
			}
		}
	}
}
