package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"mouse/internal/bench"
	"mouse/internal/fleet"
	"mouse/internal/metrics"
	"mouse/internal/probe"
)

// maxRecentRuns bounds the /runs history ring.
const maxRecentRuns = 64

// maxInferBody bounds a /v1/infer request body (the largest legal
// batch, bnn-hidden16's 4096 64-feature samples, is well under 8 MiB
// of JSON).
const maxInferBody = 8 << 20

// buildReport is the seam tests use to stub the experiment runner;
// production always points at bench.BuildReport.
var buildReport = bench.BuildReport

// testHookAfterExperiment, when non-nil, runs after each job finishes
// (before any -interval pause). Tests use it to scrape mid-stream at a
// deterministic point instead of polling on wall clock.
var testHookAfterExperiment func(seq int)

// server is moused's state: one probe.Stats shard per simulated device
// fed by the job stream, a metrics registry that aggregates them at
// scrape time, and a bounded history of recent runs for /runs.
//
// The shards are the same lock-free probe.Stats the simulators already
// feed, so serving /metrics adds nothing to simulation hot paths: all
// merging happens per scrape via Stats.Merge into a fresh accumulator.
type server struct {
	reg     *metrics.Registry
	devices []*probe.Stats
	workers int
	fleet   *fleet.Fleet

	started    *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	active     *metrics.Gauge
	runSeconds *metrics.Histogram

	inferRequests *metrics.CounterVec
	inferSamples  *metrics.Counter
	inferLatency  *metrics.Histogram

	mu     sync.Mutex
	runs   []runStatus // most recent first, capped at maxRecentRuns
	nextID int
}

// runStatus is one entry of the /runs JSON feed.
type runStatus struct {
	Seq         int     `json:"seq"`
	Name        string  `json:"name"`
	Device      int     `json:"device"`
	State       string  `json:"state"` // running, done, failed
	Rows        int     `json:"rows,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// runsPage is the /runs response document.
type runsPage struct {
	Started   float64     `json:"started"`
	Completed float64     `json:"completed"`
	Failed    float64     `json:"failed"`
	Active    float64     `json:"active"`
	Runs      []runStatus `json:"runs"`
}

func newServer(devices, workers int, fcfg fleet.Config) (*server, error) {
	if devices < 1 {
		devices = 1
	}
	fl, err := fleet.New(fcfg)
	if err != nil {
		return nil, err
	}
	s := &server{
		reg:     metrics.New(),
		devices: make([]*probe.Stats, devices),
		workers: workers,
		fleet:   fl,
	}
	for i := range s.devices {
		s.devices[i] = &probe.Stats{}
	}

	s.started = s.reg.NewCounter("moused_runs_started_total", "Experiment runs the job stream has started.")
	s.completed = s.reg.NewCounter("moused_runs_completed_total", "Experiment runs that finished successfully.")
	s.failed = s.reg.NewCounter("moused_runs_failed_total", "Experiment runs that returned an error.")
	s.active = s.reg.NewGauge("moused_runs_active", "Experiment runs currently executing.")
	s.runSeconds = s.reg.NewHistogram("moused_run_seconds", "Host wall-clock duration of completed experiment runs.",
		metrics.LogBuckets(1e-3, 8))
	s.reg.Collect("moused_devices", "gauge", "Simulated devices this instance aggregates.",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(len(s.devices))}} })

	// The fleet view: every probe family under mouse_probe_* reads one
	// merged snapshot of all device shards, taken once per scrape.
	metrics.ExportStats(s.reg, "mouse_probe", s.fleetSection)

	// Per-device families for the gauges that only make sense unmerged.
	s.reg.Collect("moused_device_voltage_volts", "gauge",
		"Capacitor voltage extremes per device (absent until a device reports voltage samples).",
		func() []metrics.Sample {
			var out []metrics.Sample
			for i, d := range s.devices {
				sec := d.Section()
				if sec.VoltageSamples == 0 {
					continue
				}
				dev := strconv.Itoa(i)
				out = append(out,
					metrics.Sample{Labels: []metrics.Label{{Name: "device", Value: dev}, {Name: "bound", Value: "max"}}, Value: sec.VoltageMax},
					metrics.Sample{Labels: []metrics.Label{{Name: "device", Value: dev}, {Name: "bound", Value: "min"}}, Value: sec.VoltageMin})
			}
			return out
		})
	s.reg.Collect("moused_device_instructions_total", "counter",
		"Committed instruction cycles per device.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, len(s.devices))
			for i, d := range s.devices {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Name: "device", Value: strconv.Itoa(i)}},
					Value:  float64(d.Section().Instructions)})
			}
			return out
		})

	// The inference fleet: request counters and latency from the HTTP
	// handler, queue depth / charge / batch totals read from the fleet
	// at scrape time.
	s.inferRequests = s.reg.NewCounterVec("moused_infer_requests_total",
		"Inference API requests by workload and outcome (ok, rejected, invalid, error).",
		"workload", "outcome")
	s.inferSamples = s.reg.NewCounter("moused_infer_samples_total",
		"Samples classified through the inference API.")
	s.inferLatency = s.reg.NewHistogram("moused_infer_latency_seconds",
		"End-to-end /v1/infer latency of successful requests.",
		metrics.ExpBuckets(1e-4, 4, 10))
	s.reg.Collect("moused_fleet_devices", "gauge",
		"Inference devices in the serving fleet.",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(fl.Devices())}} })
	s.reg.Collect("moused_fleet_queue_depth", "gauge",
		"Admission-queue depth per served workload.",
		func() []metrics.Sample {
			infos := fl.Workloads()
			out := make([]metrics.Sample, 0, len(infos))
			for _, wi := range infos {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Name: "workload", Value: wi.Name}},
					Value:  float64(fl.QueueDepth(wi.Name))})
			}
			return out
		})
	s.reg.Collect("moused_fleet_device_charge_joules", "gauge",
		"Stored capacitor energy per fleet device.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, fl.Devices())
			for i := 0; i < fl.Devices(); i++ {
				j, _ := fl.DeviceCharge(i)
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Name: "device", Value: strconv.Itoa(i)}},
					Value:  j})
			}
			return out
		})
	s.reg.Collect("moused_fleet_device_served_total", "counter",
		"Inference requests answered per fleet device.",
		func() []metrics.Sample {
			out := make([]metrics.Sample, 0, fl.Devices())
			for i := 0; i < fl.Devices(); i++ {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{{Name: "device", Value: strconv.Itoa(i)}},
					Value:  float64(fl.DeviceServed(i))})
			}
			return out
		})
	s.reg.Collect("moused_fleet_batches_total", "counter",
		"Batches dispatched to fleet devices.",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(fl.Batches())}} })
	s.reg.Collect("moused_fleet_batched_samples_total", "counter",
		"Samples dispatched to fleet devices.",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(fl.BatchedSamples())}} })
	s.reg.Collect("moused_fleet_rejected_total", "counter",
		"Inference requests rejected at admission (queue full).",
		func() []metrics.Sample { return []metrics.Sample{{Value: float64(fl.Rejected())}} })
	return s, nil
}

// Close stops the inference fleet; queued requests fail with 503.
func (s *server) Close() { s.fleet.Stop() }

// fleetSection merges every probe shard — the job-stream devices and
// the inference fleet's devices — into a fresh accumulator and
// snapshots it: the same Section a post-run report would serialize, so
// a scrape and a report read identical numbers by construction.
func (s *server) fleetSection() *probe.Section {
	agg := &probe.Stats{}
	for _, d := range s.devices {
		agg.Merge(d)
	}
	for _, d := range s.fleet.DeviceStats() {
		agg.Merge(d)
	}
	return agg.Section()
}

// handler serves moused's HTTP surface: Prometheus exposition on
// /metrics, liveness on /healthz, the recent-run JSON feed on /runs,
// and the standard pprof handlers under /debug/pprof/.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/runs", s.serveRuns)
	mux.HandleFunc("/v1/infer", s.serveInfer)
	mux.HandleFunc("/v1/workloads", s.serveWorkloads)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *server) serveRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	page := runsPage{
		Started:   s.started.Value(),
		Completed: s.completed.Value(),
		Failed:    s.failed.Value(),
		Active:    s.active.Value(),
		Runs:      append([]runStatus{}, s.runs...),
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(page)
}

// inferRequest is the /v1/infer request document.
type inferRequest struct {
	Workload string  `json:"workload"`
	Samples  [][]int `json:"samples"`
}

// inferResponse is the /v1/infer success document: Predictions[i]
// labels Samples[i].
type inferResponse struct {
	Workload    string `json:"workload"`
	Predictions []int  `json:"predictions"`
}

// errorResponse is the JSON error document for the inference API.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

// serveInfer is POST /v1/infer: decode the sample batch, run it through
// the fleet (which batches it with concurrent requests onto one
// bit-sliced replay), and map fleet errors to HTTP statuses — 400 for
// invalid requests, 429 + Retry-After for backpressure, 503 while
// shutting down.
func (s *server) serveInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req inferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInferBody)).Decode(&req); err != nil {
		s.inferRequests.With("unknown", "invalid").Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// Unknown workload names come from clients, so they must not mint
	// new label values.
	label := req.Workload
	if !s.fleet.HasWorkload(label) {
		label = "unknown"
	}
	start := time.Now()
	preds, err := s.fleet.Infer(r.Context(), req.Workload, req.Samples)
	if err != nil {
		var oe *fleet.OverloadedError
		switch {
		case errors.As(err, &oe):
			s.inferRequests.With(label, "rejected").Inc()
			secs := int(math.Ceil(oe.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		case errors.Is(err, fleet.ErrInvalid):
			s.inferRequests.With(label, "invalid").Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		case errors.Is(err, fleet.ErrStopped):
			s.inferRequests.With(label, "error").Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			s.inferRequests.With(label, "error").Inc()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	s.inferLatency.Observe(time.Since(start).Seconds())
	s.inferRequests.With(label, "ok").Inc()
	s.inferSamples.Add(float64(len(req.Samples)))
	writeJSON(w, http.StatusOK, inferResponse{Workload: req.Workload, Predictions: preds})
}

// serveWorkloads is GET /v1/workloads: the served workloads and their
// batch geometry.
func (s *server) serveWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Workloads())
}

// record inserts or updates the run history entry for seq.
func (s *server) record(st runStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.runs {
		if s.runs[i].Seq == st.Seq {
			s.runs[i] = st
			return
		}
	}
	s.runs = append([]runStatus{st}, s.runs...)
	if len(s.runs) > maxRecentRuns {
		s.runs = s.runs[:maxRecentRuns]
	}
}

// runOne executes one experiment against one device shard, updating the
// run metrics and the /runs history around the call. The active gauge
// decrements under defer so a panicking experiment cannot inflate it
// permanently.
func (s *server) runOne(name string, device, seq int) {
	s.started.Inc()
	s.active.Add(1)
	defer s.active.Add(-1)
	s.record(runStatus{Seq: seq, Name: name, Device: device, State: "running"})
	start := time.Now()
	rep, err := buildReport(name, s.workers, s.devices[device])
	wall := time.Since(start)
	s.runSeconds.Observe(wall.Seconds())
	st := runStatus{Seq: seq, Name: name, Device: device, WallSeconds: wall.Seconds()}
	if err != nil {
		s.failed.Inc()
		st.State = "failed"
		st.Error = err.Error()
	} else {
		s.completed.Inc()
		st.State = "done"
		st.Rows = reportRows(rep)
	}
	s.record(st)
}

// reportRows sums the row counts over every experiment in the report —
// a multi-experiment job ("all") reports its total, and a report with
// no experiments reports zero instead of panicking.
func reportRows(rep *bench.Report) int {
	total := 0
	for _, e := range rep.Experiments {
		if n := bench.RowCount(e.Rows); n > 0 {
			total += n
		}
	}
	return total
}

// runStream executes the experiment list round-robin across devices:
// job seq runs experiment seq mod len(experiments) on device seq mod
// len(devices). repeat bounds the passes over the list (0 = run until
// ctx is cancelled); interval inserts a pause between jobs.
func (s *server) runStream(ctx context.Context, experiments []string, repeat int, interval time.Duration) {
	seq := 0
	for pass := 0; repeat == 0 || pass < repeat; pass++ {
		for _, name := range experiments {
			if ctx.Err() != nil {
				return
			}
			s.runOne(name, seq%len(s.devices), seq)
			seq++
			if testHookAfterExperiment != nil {
				testHookAfterExperiment(seq)
			}
			if interval > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
			}
		}
	}
}
