package main

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"mouse/internal/bench"
	"mouse/internal/probe"
)

// stubReport swaps the buildReport seam for the test and restores it on
// cleanup. Tests in this package run sequentially, so the package var
// is safe to swap.
func stubReport(t *testing.T, fn func(string, int, ...probe.Observer) (*bench.Report, error)) {
	t.Helper()
	old := buildReport
	buildReport = fn
	t.Cleanup(func() { buildReport = old })
}

// TestRunsSumsMultiExperimentRows: a multi-experiment job ("all") must
// report the row total across every experiment in /runs, not just the
// first experiment's count — and an empty report must not panic.
func TestRunsSumsMultiExperimentRows(t *testing.T) {
	s := newTestServer(t, 1, 1)
	stubReport(t, func(string, int, ...probe.Observer) (*bench.Report, error) {
		return &bench.Report{Experiments: []bench.ExperimentReport{
			{Name: "a", Rows: []int{1, 2, 3}},
			{Name: "b", Rows: []int{4, 5}},
		}}, nil
	})
	s.runOne("all", 0, 0)
	s.mu.Lock()
	rows := s.runs[0].Rows
	s.mu.Unlock()
	if rows != 5 {
		t.Errorf("multi-experiment run recorded %d rows, want 5 (3+2)", rows)
	}

	stubReport(t, func(string, int, ...probe.Observer) (*bench.Report, error) {
		return &bench.Report{}, nil
	})
	s.runOne("all", 0, 1) // must not panic on rep.Experiments[0]
	s.mu.Lock()
	st := s.runs[0]
	s.mu.Unlock()
	if st.State != "done" || st.Rows != 0 {
		t.Errorf("empty report run: %+v, want done with 0 rows", st)
	}
}

// TestActiveGaugeSurvivesPanic: a panicking experiment must not leave
// moused_runs_active inflated forever.
func TestActiveGaugeSurvivesPanic(t *testing.T) {
	s := newTestServer(t, 1, 1)
	stubReport(t, func(string, int, ...probe.Observer) (*bench.Report, error) {
		panic("experiment exploded")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stub did not panic")
			}
		}()
		s.runOne("table2", 0, 0)
	}()
	if got := s.active.Value(); got != 0 {
		t.Errorf("moused_runs_active = %g after a panicking run, want 0", got)
	}
}

// failingListener's Accept always returns a permanent error, the shape
// of a listener yanked out from under a running server.
type failingListener struct{}

func (failingListener) Accept() (net.Conn, error) { return nil, errors.New("listener exploded") }
func (failingListener) Close() error              { return nil }
func (failingListener) Addr() net.Addr            { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// TestServeHTTPReturnsOnListenerError: a real Serve error (not
// ErrServerClosed) must cancel the job stream before waiting on it —
// with -repeat 0 the old code blocked on wg.Wait forever and moused
// never exited.
func TestServeHTTPReturnsOnListenerError(t *testing.T) {
	s := newTestServer(t, 1, 1)
	stubReport(t, func(string, int, ...probe.Observer) (*bench.Report, error) {
		return &bench.Report{}, nil
	})
	errCh := make(chan error, 1)
	go func() {
		// repeat 0: the stream runs until its context is cancelled.
		errCh <- serveHTTP(context.Background(), failingListener{}, s, []string{"table2"}, 0, 0)
	}()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "listener exploded") {
			t.Errorf("serveHTTP returned %v, want the listener error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serveHTTP hung after listener failure with -repeat 0")
	}
}

// TestParseExperimentsNormalizes: "all" absorbs named experiments (they
// would run twice per pass otherwise), repeats dedupe, and a typo next
// to "all" still errors.
func TestParseExperimentsNormalizes(t *testing.T) {
	got, err := parseExperiments("all,table2,checkpoint")
	if err != nil || len(got) != 1 || got[0] != "all" {
		t.Errorf(`parseExperiments("all,table2,checkpoint") = %v, %v; want [all]`, got, err)
	}
	got, err = parseExperiments("table2,fft,table2,table2")
	if err != nil || len(got) != 2 || got[0] != "table2" || got[1] != "fft" {
		t.Errorf(`parseExperiments("table2,fft,table2,table2") = %v, %v; want [table2 fft]`, got, err)
	}
	if _, err := parseExperiments("all,frobnicate"); err == nil {
		t.Error(`parseExperiments("all,frobnicate") accepted an unknown name`)
	}
}
