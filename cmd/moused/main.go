// moused is the repo's long-running serving process: it executes a
// configurable stream of mousebench experiments on simulated devices,
// serves classification requests against a fleet of energy-harvesting
// MOUSE devices, and exposes live telemetry about both over HTTP.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (version 0.0.4): the
//	                merged view of every probe shard — job-stream
//	                devices and inference-fleet devices — under
//	                mouse_probe_*, plus moused_* run/job metrics and
//	                the fleet's queue/charge/latency families
//	/v1/infer       POST a JSON sample batch, get predictions; requests
//	                are coalesced into bit-sliced batches and placed on
//	                the most-charged device (429 + Retry-After under
//	                overload)
//	/v1/workloads   served workloads and their batch geometry
//	/healthz        liveness probe, always "ok" while serving
//	/runs           recent experiment runs as indented JSON
//	/debug/pprof/   standard Go profiling handlers
//
// Usage:
//
//	moused [-addr HOST:PORT] [-addr-file FILE] [-experiments CSV]
//	       [-devices N] [-parallel N] [-repeat N] [-interval DUR]
//	       [-fleet-devices N] [-fleet-power continuous|harvested]
//	       [-fleet-queue N] [-fleet-linger DUR] [-fleet-harvest W]
//
// -addr defaults to 127.0.0.1:0 (an OS-assigned port); the bound
// address is printed on stdout and, with -addr-file, written to a file
// so scripts can discover it race-free. -experiments names the job
// stream (mousebench registry names, default "table2,table3,checkpoint"
// — the checkpoint sweep actually simulates, so the probe families are
// live out of the box); "all" composed with named experiments collapses
// to "all", and repeats are deduped.
// -devices spreads jobs round-robin over N independent telemetry
// shards; -repeat bounds the passes over the stream (0 = run until
// terminated) and -interval paces consecutive jobs. The -fleet-* flags
// size the inference fleet (see internal/fleet): device count, power
// mode, admission-queue depth, batching deadline, and per-device
// harvest rate. The server keeps serving after a finite stream
// completes; SIGINT/SIGTERM shut it down.
//
// See EXPERIMENTS.md for scrape and inference walkthroughs with curl.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"mouse/internal/bench"
	"mouse/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 = OS-assigned)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	experiments := flag.String("experiments", "table2,table3,checkpoint", "comma-separated experiment job stream")
	devices := flag.Int("devices", 1, "simulated devices to spread jobs over")
	parallel := flag.Int("parallel", 0, "sweep worker bound per job; 0 means one per CPU")
	repeat := flag.Int("repeat", 1, "passes over the experiment stream (0 = repeat until terminated)")
	interval := flag.Duration("interval", 0, "pause between consecutive jobs")
	defFleet := fleet.DefaultConfig()
	fleetDevices := flag.Int("fleet-devices", defFleet.Devices, "inference fleet device count")
	fleetPower := flag.String("fleet-power", string(defFleet.Mode), "fleet power mode: continuous or harvested")
	fleetQueue := flag.Int("fleet-queue", defFleet.QueueDepth, "per-workload admission queue depth")
	fleetLinger := flag.Duration("fleet-linger", defFleet.BatchLinger, "batching deadline after the first request of a batch")
	fleetHarvest := flag.Float64("fleet-harvest", defFleet.HarvestW, "per-device harvest rate in watts (harvested mode)")
	flag.Parse()

	fcfg := defFleet
	fcfg.Devices = *fleetDevices
	fcfg.Mode = fleet.PowerMode(*fleetPower)
	fcfg.QueueDepth = *fleetQueue
	fcfg.BatchLinger = *fleetLinger
	fcfg.HarvestW = *fleetHarvest

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, *addrFile, *experiments, *devices, *parallel, *repeat, *interval, fcfg); err != nil {
		fmt.Fprintln(os.Stderr, "moused:", err)
		os.Exit(1)
	}
}

// parseExperiments splits and validates the -experiments list against
// the mousebench registry. "all" already runs the full suite, so "all"
// composed with named experiments collapses to just "all" (otherwise
// every pass would run those jobs twice), and exact repeats are deduped
// — but only after every name validates, so a typo next to "all" still
// errors.
func parseExperiments(csv string) ([]string, error) {
	known := map[string]bool{"all": true}
	for _, e := range bench.Experiments() {
		known[e.Name] = true
	}
	seen := map[string]bool{}
	var names []string
	all := false
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		if name == "all" {
			all = true
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty experiment list")
	}
	if all {
		return []string{"all"}, nil
	}
	return names, nil
}

// serve binds the listener, builds the server (including its inference
// fleet), and hands off to serveHTTP.
func serve(ctx context.Context, addr, addrFile, experiments string, devices, parallel, repeat int, interval time.Duration, fcfg fleet.Config) error {
	names, err := parseExperiments(experiments)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Printf("moused: listening on http://%s\n", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	s, err := newServer(devices, parallel, fcfg)
	if err != nil {
		ln.Close()
		return err
	}
	defer s.Close()
	return serveHTTP(ctx, ln, s, names, repeat, interval)
}

// serveHTTP runs the job stream and serves ln until ctx is cancelled or
// the listener fails. The stream context is cancelled as soon as Serve
// returns — before waiting on the stream — so a real listener error
// surfaces as moused's exit instead of an infinite -repeat 0 stream
// holding the process open forever.
func serveHTTP(ctx context.Context, ln net.Listener, s *server, names []string, repeat int, interval time.Duration) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.runStream(ctx, names, repeat, interval)
	}()

	httpSrv := &http.Server{Handler: s.handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	err := httpSrv.Serve(ln)
	cancel()
	wg.Wait()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
