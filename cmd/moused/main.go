// moused is the repo's long-running observability endpoint: it executes
// a configurable stream of mousebench experiments on simulated devices
// and serves live telemetry about them over HTTP.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (version 0.0.4): the
//	                merged fleet view of every device's probe telemetry
//	                under mouse_probe_*, plus moused_* run/job metrics
//	                and per-device voltage and instruction families
//	/healthz        liveness probe, always "ok" while serving
//	/runs           recent experiment runs as indented JSON
//	/debug/pprof/   standard Go profiling handlers
//
// Usage:
//
//	moused [-addr HOST:PORT] [-addr-file FILE] [-experiments CSV]
//	       [-devices N] [-parallel N] [-repeat N] [-interval DUR]
//
// -addr defaults to 127.0.0.1:0 (an OS-assigned port); the bound
// address is printed on stdout and, with -addr-file, written to a file
// so scripts can discover it race-free. -experiments names the job
// stream (mousebench registry names, default "table2,table3,checkpoint"
// — the checkpoint sweep actually simulates, so the probe families are
// live out of the box);
// -devices spreads jobs round-robin over N independent telemetry
// shards; -repeat bounds the passes over the stream (0 = run until
// terminated) and -interval paces consecutive jobs. The server keeps
// serving after a finite stream completes; SIGINT/SIGTERM shut it down.
//
// See EXPERIMENTS.md for a scrape walkthrough with curl.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"mouse/internal/bench"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 = OS-assigned)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	experiments := flag.String("experiments", "table2,table3,checkpoint", "comma-separated experiment job stream")
	devices := flag.Int("devices", 1, "simulated devices to spread jobs over")
	parallel := flag.Int("parallel", 0, "sweep worker bound per job; 0 means one per CPU")
	repeat := flag.Int("repeat", 1, "passes over the experiment stream (0 = repeat until terminated)")
	interval := flag.Duration("interval", 0, "pause between consecutive jobs")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, *addr, *addrFile, *experiments, *devices, *parallel, *repeat, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "moused:", err)
		os.Exit(1)
	}
}

// parseExperiments splits and validates the -experiments list against
// the mousebench registry ("all" is accepted as the full suite).
func parseExperiments(csv string) ([]string, error) {
	known := map[string]bool{"all": true}
	for _, e := range bench.Experiments() {
		known[e.Name] = true
	}
	var names []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty experiment list")
	}
	return names, nil
}

// serve binds the listener, starts the job stream, and blocks until
// ctx is cancelled (or the listener fails).
func serve(ctx context.Context, addr, addrFile, experiments string, devices, parallel, repeat int, interval time.Duration) error {
	names, err := parseExperiments(experiments)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Printf("moused: listening on http://%s\n", bound)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	s := newServer(devices, parallel)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.runStream(ctx, names, repeat, interval)
	}()

	httpSrv := &http.Server{Handler: s.handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	err = httpSrv.Serve(ln)
	wg.Wait()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
