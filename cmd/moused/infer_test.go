package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"mouse/internal/fleet"
	"mouse/internal/metrics"
	"mouse/internal/workload"
)

// postInfer POSTs one inference request and decodes the response.
func postInfer(t *testing.T, ts *httptest.Server, req inferRequest) (*http.Response, inferResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out inferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding /v1/infer response: %v", err)
		}
	}
	return resp, out
}

// TestInferMatchesOfflineBatch is the acceptance differential test:
// predictions served over POST /v1/infer — batched by the fleet, placed
// by charge, stalled for harvest — must be bit-identical to the offline
// BatchMachine path for every served workload.
func TestInferMatchesOfflineBatch(t *testing.T) {
	cfg := fleet.DefaultConfig()
	cfg.Devices = 2
	cfg.Mode = fleet.Harvested
	cfg.HarvestW = 0.5 // µs-scale stalls: exercise the outage path, keep the test fast
	cfg.EnergyPerSampleJ = 1e-6
	cfg.BatchLinger = 200 * time.Microsecond
	s, err := newServer(1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const chunks, chunkSize = 3, 8
	for _, hb := range workload.HotBatches() {
		offline, err := hb.NewBatched()
		if err != nil {
			t.Fatal(err)
		}
		samples := hb.Samples(chunks * chunkSize)
		for c := 0; c < chunks; c++ {
			chunk := samples[c*chunkSize : (c+1)*chunkSize]
			want, err := offline(chunk)
			if err != nil {
				t.Fatal(err)
			}
			resp, out := postInfer(t, ts, inferRequest{Workload: hb.Name, Samples: chunk})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s chunk %d: %s", hb.Name, c, resp.Status)
			}
			if len(out.Predictions) != len(want) {
				t.Fatalf("%s chunk %d: %d predictions for %d samples", hb.Name, c, len(out.Predictions), len(want))
			}
			for i := range want {
				if out.Predictions[i] != want[i] {
					t.Errorf("%s chunk %d sample %d: served %d, offline %d",
						hb.Name, c, i, out.Predictions[i], want[i])
				}
			}
		}
	}

	// The fleet families must be live after serving: latency counted,
	// per-device charge exported, queue depth present, and the merged
	// probe view must show the harvest stalls as outages.
	body := scrape(t, ts, "/metrics")
	if err := metrics.Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, body)
	}
	vals, err := metrics.Values(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	wantOK := float64(2 * chunks)
	for key, want := range map[string]float64{
		`moused_infer_requests_total{outcome="ok",workload="svm-adult"}`:    chunks,
		`moused_infer_requests_total{outcome="ok",workload="bnn-hidden16"}`: chunks,
		"moused_infer_samples_total":                                        wantOK * chunkSize,
		"moused_infer_latency_seconds_count":                                wantOK,
		"moused_fleet_devices":                                              2,
	} {
		if vals[key] != want {
			t.Errorf("%s = %g, want %g", key, vals[key], want)
		}
	}
	for _, key := range []string{
		`moused_fleet_device_charge_joules{device="0"}`,
		`moused_fleet_device_charge_joules{device="1"}`,
		`moused_fleet_queue_depth{workload="svm-adult"}`,
	} {
		if _, ok := vals[key]; !ok {
			t.Errorf("missing series %s", key)
		}
	}
	if vals["moused_fleet_batched_samples_total"] != wantOK*chunkSize {
		t.Errorf("moused_fleet_batched_samples_total = %g, want %g",
			vals["moused_fleet_batched_samples_total"], wantOK*chunkSize)
	}
	if vals["mouse_probe_outages_total"] == 0 {
		t.Error("harvested serving recorded no outages in the merged probe view")
	}
}

// TestInferEndpointValidation maps client mistakes to HTTP statuses.
func TestInferEndpointValidation(t *testing.T) {
	s := newTestServer(t, 1, 1)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/infer: %s, want 405", resp.Status)
	}

	resp, err = ts.Client().Post(ts.URL+"/v1/infer", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %s, want 400", resp.Status)
	}

	for name, req := range map[string]inferRequest{
		"unknown workload": {Workload: "frobnicate", Samples: [][]int{{1}}},
		"empty batch":      {Workload: "bnn-hidden16"},
		"wrong features":   {Workload: "bnn-hidden16", Samples: [][]int{{1, 0, 1}}},
	} {
		resp, _ := postInfer(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", name, resp.Status)
		}
	}

	var infos []fleet.WorkloadInfo
	if err := json.Unmarshal(scrape(t, ts, "/v1/workloads"), &infos); err != nil {
		t.Fatalf("/v1/workloads: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "bnn-hidden16" || infos[0].Capacity == 0 {
		t.Errorf("/v1/workloads = %+v", infos)
	}
}

// TestInferBackpressure429: with a starved single device and a depth-1
// admission queue, sustained posting must hit 429 with a Retry-After
// hint — the backpressure contract.
func TestInferBackpressure429(t *testing.T) {
	cfg := fleet.DefaultConfig()
	cfg.Devices = 1
	cfg.QueueDepth = 1
	cfg.BatchLinger = 0
	cfg.Mode = fleet.Harvested
	cfg.HarvestW = 1e-9      // effectively never recharges
	cfg.EnergyPerSampleJ = 1 // first batch stalls its device forever
	cfg.Workloads = []string{"bnn-hidden16"}
	s, err := newServer(1, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	defer s.Close() // before ts.Close: unblocks the hung handlers it waits for

	hb, err := workload.HotBatchByName("bnn-hidden16")
	if err != nil {
		t.Fatal(err)
	}
	sample := hb.Samples(1)
	body, err := json.Marshal(inferRequest{Workload: "bnn-hidden16", Samples: sample})
	if err != nil {
		t.Fatal(err)
	}

	// Each short-deadline POST either times out while queued (filling
	// the pipeline: stalled device, occupied inbox, blocked batcher,
	// full queue) or bounces off the full queue with a 429.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err != nil {
			cancel()
			continue // admitted and timed out: one more slot occupied
		}
		status := resp.StatusCode
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		cancel()
		if status != http.StatusTooManyRequests {
			continue
		}
		secs, err := strconv.Atoi(retry)
		if err != nil || secs < 1 {
			t.Fatalf("429 carried Retry-After %q, want an integer >= 1", retry)
		}
		return
	}
	t.Fatal("never saw a 429 from a starved, queue-full fleet")
}
