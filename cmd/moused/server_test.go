package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mouse/internal/fleet"
	"mouse/internal/metrics"
)

// testFleetConfig is a small continuous-power inference fleet: tests
// that only exercise the job stream shouldn't pay for charge
// simulation or lingering batchers.
func testFleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Devices = 2
	cfg.Mode = fleet.Continuous
	cfg.BatchLinger = 0
	return cfg
}

// newTestServer builds a server on the test fleet config and ties its
// shutdown to the test.
func newTestServer(t *testing.T, devices, workers int) *server {
	t.Helper()
	s, err := newServer(devices, workers, testFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// streamOnce runs the given experiment stream to completion on srv.
func streamOnce(s *server, experiments ...string) {
	s.runStream(context.Background(), experiments, 1, 0)
}

// scrape fetches path from the test server and returns the body.
func scrape(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsMatchFleetSection is the acceptance differential test:
// after a finished job stream, every mouse_probe_* series served on
// /metrics must equal the corresponding field of the merged fleet
// Section exactly, and the whole document must pass the linter.
func TestMetricsMatchFleetSection(t *testing.T) {
	s := newTestServer(t, 2, 1)
	streamOnce(s, "checkpoint", "fft")

	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	body := scrape(t, ts, "/metrics")
	if err := metrics.Lint(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics fails lint: %v\n%s", err, body)
	}
	vals, err := metrics.Values(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}

	sec := s.fleetSection()
	if sec.Instructions == 0 || sec.Outages == 0 {
		t.Fatalf("job stream produced no telemetry: %+v", sec)
	}
	want := map[string]float64{
		"mouse_probe_instructions_total":                   float64(sec.Instructions),
		"mouse_probe_replays_total":                        float64(sec.Replays),
		"mouse_probe_interrupts_total":                     float64(sec.Interrupts),
		"mouse_probe_outages_total":                        float64(sec.Outages),
		"mouse_probe_restores_total":                       float64(sec.Restores),
		`mouse_probe_energy_joules_total{phase="compute"}`: sec.Energy.Compute,
		`mouse_probe_energy_joules_total{phase="backup"}`:  sec.Energy.Backup,
		`mouse_probe_energy_joules_total{phase="restore"}`: sec.Energy.Restore,
		"mouse_probe_busy_seconds_total":                   sec.BusySeconds,
		"mouse_probe_outage_seconds_total":                 sec.OutageSeconds,
		"mouse_probe_outage_duration_seconds_count":        float64(sec.Outages),
		"mouse_probe_outage_duration_seconds_sum":          sec.OutageSeconds,
		"moused_runs_started_total":                        2,
		"moused_runs_completed_total":                      2,
		"moused_runs_failed_total":                         0,
		"moused_runs_active":                               0,
		"moused_devices":                                   2,
		"moused_run_seconds_count":                         2,
	}
	for key, v := range want {
		got, ok := vals[key]
		if !ok {
			t.Errorf("missing series %s", key)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", key, got, v)
		}
	}

	// Devices must have split the work: both shards saw instructions,
	// and the per-device series sum to the fleet total.
	d0 := vals[`moused_device_instructions_total{device="0"}`]
	d1 := vals[`moused_device_instructions_total{device="1"}`]
	if d0 == 0 || d1 == 0 {
		t.Errorf("round-robin left a device idle: dev0=%g dev1=%g", d0, d1)
	}
	if d0+d1 != float64(sec.Instructions) {
		t.Errorf("device instruction split %g+%g != fleet %d", d0, d1, sec.Instructions)
	}
}

// TestScrapeMidStream scrapes /metrics at a deterministic point inside
// the job stream (after the first job, via the test hook) and checks
// the exposition is already valid and counting.
func TestScrapeMidStream(t *testing.T) {
	s := newTestServer(t, 1, 1)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var mid []byte
	testHookAfterExperiment = func(seq int) {
		if seq == 1 {
			mid = scrape(t, ts, "/metrics")
		}
	}
	defer func() { testHookAfterExperiment = nil }()

	streamOnce(s, "table2", "checkpoint")
	if mid == nil {
		t.Fatal("mid-stream hook never fired")
	}
	if err := metrics.Lint(strings.NewReader(string(mid))); err != nil {
		t.Fatalf("mid-stream /metrics fails lint: %v\n%s", err, mid)
	}
	vals, err := metrics.Values(strings.NewReader(string(mid)))
	if err != nil {
		t.Fatal(err)
	}
	if vals["moused_runs_started_total"] != 1 || vals["moused_runs_completed_total"] != 1 {
		t.Errorf("mid-stream run counters: started %g, completed %g",
			vals["moused_runs_started_total"], vals["moused_runs_completed_total"])
	}
}

func TestHealthzRunsAndPprof(t *testing.T) {
	s := newTestServer(t, 1, 1)
	streamOnce(s, "table2")
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if got := string(scrape(t, ts, "/healthz")); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}

	var page runsPage
	if err := json.Unmarshal(scrape(t, ts, "/runs"), &page); err != nil {
		t.Fatalf("/runs is not valid JSON: %v", err)
	}
	if page.Started != 1 || page.Completed != 1 || len(page.Runs) != 1 {
		t.Fatalf("/runs page: %+v", page)
	}
	r := page.Runs[0]
	if r.Name != "table2" || r.State != "done" || r.Rows <= 0 {
		t.Errorf("run record: %+v", r)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		scrape(t, ts, path) // fails the test on non-200
	}
}

func TestRunsHistoryTracksFailures(t *testing.T) {
	s := newTestServer(t, 1, 1)
	s.runOne("not-an-experiment", 0, 0)
	if s.failed.Value() != 1 || s.completed.Value() != 0 {
		t.Fatalf("failed %g completed %g", s.failed.Value(), s.completed.Value())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.runs) != 1 || s.runs[0].State != "failed" || s.runs[0].Error == "" {
		t.Errorf("history: %+v", s.runs)
	}
}

func TestParseExperiments(t *testing.T) {
	names, err := parseExperiments(" table2, checkpoint ,fft")
	if err != nil || len(names) != 3 || names[0] != "table2" {
		t.Errorf("parseExperiments: %v, %v", names, err)
	}
	if _, err := parseExperiments("table2,frobnicate"); err == nil {
		t.Errorf("unknown experiment accepted")
	}
	if _, err := parseExperiments(" , "); err == nil {
		t.Errorf("empty list accepted")
	}
}

// TestServeWritesAddrFileAndShutsDown drives serve end to end: bind an
// OS-assigned port, discover it through -addr-file, hit /healthz, then
// cancel the context and require a clean exit.
func TestServeWritesAddrFileAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve(ctx, "127.0.0.1:0", addrFile, "table2", 1, 1, 1, 0, testFleetConfig())
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("addr file never appeared")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %s", resp.Status)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down after cancel")
	}
}

// TestRunStreamHonorsContext: a cancelled context stops the infinite
// stream promptly.
func TestRunStreamHonorsContext(t *testing.T) {
	s := newTestServer(t, 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	testHookAfterExperiment = func(seq int) {
		if seq == 2 {
			cancel()
		}
	}
	defer func() { testHookAfterExperiment = nil }()
	done := make(chan struct{})
	go func() {
		s.runStream(ctx, []string{"table2"}, 0, 0) // repeat forever
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runStream did not stop after cancel")
	}
	if got := s.started.Value(); got != 2 {
		t.Errorf("started %g runs before stopping, want 2", got)
	}
}
